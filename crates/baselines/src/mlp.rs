use pagpass_nn::{gelu, gelu_grad, Linear, Mat, Param, Rng};

/// A plain GELU MLP with manual backprop, built from [`pagpass_nn::Linear`]
/// layers — the building block of the GAN generator/critic, the VAE
/// encoder/decoder, and the flow coupling functions.
///
/// The final layer has no activation (callers apply softmax / identity /
/// whatever their loss needs).
///
/// # Examples
///
/// ```
/// use pagpass_baselines::MlpNet;
/// use pagpass_nn::{Mat, Rng};
///
/// let mut net = MlpNet::new(&[4, 8, 2], &mut Rng::seed_from(0));
/// let y = net.forward(&Mat::zeros(3, 4));
/// assert_eq!((y.rows(), y.cols()), (3, 2));
/// ```
#[derive(Debug, Clone)]
pub struct MlpNet {
    layers: Vec<Linear>,
    cached_pre: Vec<Mat>,
}

impl MlpNet {
    /// Builds layers `dims[0] → dims[1] → … → dims.last()`, with
    /// `1/√fan_in` Gaussian weights (He-style, suited to deep MLPs over
    /// wide one-hot inputs).
    ///
    /// # Panics
    ///
    /// Panics if fewer than two dims are given.
    #[must_use]
    pub fn new(dims: &[usize], rng: &mut Rng) -> MlpNet {
        assert!(
            dims.len() >= 2,
            "an MLP needs at least input and output dims"
        );
        let layers = dims
            .windows(2)
            .map(|w| {
                let mut layer = Linear::new(w[0], w[1], rng);
                layer.w.value = Mat::randn(w[0], w[1], 1.0 / (w[0] as f32).sqrt(), rng);
                layer
            })
            .collect();
        MlpNet {
            layers,
            cached_pre: Vec::new(),
        }
    }

    /// Input dimensionality.
    #[must_use]
    pub fn in_dim(&self) -> usize {
        self.layers[0].in_dim()
    }

    /// Output dimensionality.
    #[must_use]
    pub fn out_dim(&self) -> usize {
        // LINT-ALLOW: no-unwrap-in-lib invariant: the constructor panics
        // on fewer than two dims, so `layers` is never empty.
        self.layers.last().expect("non-empty").out_dim()
    }

    /// Forward pass caching pre-activations for [`backward`](Self::backward).
    #[must_use]
    pub fn forward(&mut self, x: &Mat) -> Mat {
        self.cached_pre.clear();
        let n = self.layers.len();
        let mut h = x.clone();
        for (i, layer) in self.layers.iter_mut().enumerate() {
            h = layer.forward(&h);
            if i + 1 < n {
                self.cached_pre.push(h.clone());
                for v in h.as_mut_slice() {
                    *v = gelu(*v);
                }
            }
        }
        h
    }

    /// Inference-only forward pass.
    #[must_use]
    pub fn apply(&self, x: &Mat) -> Mat {
        let n = self.layers.len();
        let mut h = x.clone();
        for (i, layer) in self.layers.iter().enumerate() {
            h = layer.apply(&h);
            if i + 1 < n {
                for v in h.as_mut_slice() {
                    *v = gelu(*v);
                }
            }
        }
        h
    }

    /// Backward pass: accumulates parameter gradients, returns `dX`.
    ///
    /// # Panics
    ///
    /// Panics without a preceding [`forward`](Self::forward).
    #[must_use]
    pub fn backward(&mut self, dy: &Mat) -> Mat {
        let mut d = dy.clone();
        let n = self.layers.len();
        for (i, layer) in self.layers.iter_mut().enumerate().rev() {
            if i + 1 < n {
                let pre = &self.cached_pre[i];
                for (g, &p) in d.as_mut_slice().iter_mut().zip(pre.as_slice()) {
                    *g *= gelu_grad(p);
                }
            }
            d = layer.backward(&d);
        }
        d
    }

    /// Visits all parameters.
    pub fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        for layer in &mut self.layers {
            layer.visit_params(f);
        }
    }

    /// Clamps every weight and bias into `[-c, c]` (WGAN critic clipping).
    pub fn clip_weights(&mut self, c: f32) {
        self.visit_params(&mut |p| {
            for v in p.value.as_mut_slice() {
                *v = v.clamp(-c, c);
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pagpass_nn::gradcheck::GradCheck;

    #[test]
    fn forward_apply_agree() {
        let mut rng = Rng::seed_from(1);
        let mut net = MlpNet::new(&[5, 7, 3], &mut rng);
        let x = Mat::randn(4, 5, 1.0, &mut rng);
        let a = net.forward(&x);
        let b = net.apply(&x);
        for (p, q) in a.as_slice().iter().zip(b.as_slice()) {
            assert!((p - q).abs() < 1e-6);
        }
    }

    #[test]
    fn gradients_check_out() {
        let mut rng = Rng::seed_from(2);
        let mut net = MlpNet::new(&[4, 6, 6, 2], &mut rng);
        let x = Mat::randn(5, 4, 1.0, &mut rng);
        let report = GradCheck::default().run(&mut net, &|n, f| n.visit_params(f), &mut |n| {
            let y = n.forward(&x);
            let mut loss = 0.0;
            let mut d = Mat::zeros(y.rows(), y.cols());
            for (i, (dv, &yv)) in d.as_mut_slice().iter_mut().zip(y.as_slice()).enumerate() {
                let w = (i as f32 * 0.7).cos();
                *dv = w;
                loss += yv * w;
            }
            let _ = n.backward(&d);
            loss
        });
        assert_eq!(report.failures, 0, "{report:?}");
    }

    #[test]
    fn input_gradient_flows() {
        let mut rng = Rng::seed_from(3);
        let mut net = MlpNet::new(&[3, 5, 2], &mut rng);
        let x = Mat::randn(2, 3, 1.0, &mut rng);
        let _ = net.forward(&x);
        let dx = net.backward(&Mat::from_rows(2, 2, vec![1.0; 4]));
        assert_eq!((dx.rows(), dx.cols()), (2, 3));
        assert!(dx.as_slice().iter().any(|&v| v != 0.0));
    }

    #[test]
    fn clip_bounds_all_weights() {
        let mut rng = Rng::seed_from(4);
        let mut net = MlpNet::new(&[8, 8], &mut rng);
        net.clip_weights(0.01);
        net.visit_params(&mut |p| {
            assert!(p.value.as_slice().iter().all(|v| v.abs() <= 0.01));
        });
    }

    #[test]
    #[should_panic(expected = "at least input and output")]
    fn one_dim_panics() {
        let _ = MlpNet::new(&[3], &mut Rng::seed_from(0));
    }
}
