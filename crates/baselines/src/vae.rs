use pagpass_nn::{softmax_in_place, AdamW, Mat, Rng};
use serde::{Deserialize, Serialize};

use crate::encoding::{self, SYMBOLS, WIDTH};
use crate::mlp::MlpNet;

/// VAEPass hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VaeConfig {
    /// Latent dimensionality.
    pub latent: usize,
    /// Hidden width of encoder and decoder.
    pub hidden: usize,
    /// Minibatch size.
    pub batch: usize,
    /// Learning rate.
    pub lr: f32,
    /// KL-term weight (β-VAE style; 1.0 = vanilla).
    pub beta: f32,
}

impl Default for VaeConfig {
    fn default() -> VaeConfig {
        VaeConfig {
            latent: 48,
            hidden: 192,
            batch: 32,
            lr: 3e-4,
            beta: 0.5,
        }
    }
}

impl VaeConfig {
    /// A minimal configuration for unit tests.
    #[must_use]
    pub fn tiny() -> VaeConfig {
        VaeConfig {
            latent: 8,
            hidden: 24,
            batch: 8,
            lr: 1e-3,
            beta: 0.5,
        }
    }
}

/// The VAEPass baseline (Yang et al. 2022): an MLP variational autoencoder
/// over the fixed 12×95 one-hot password tensor, trained with per-slot
/// categorical cross-entropy reconstruction plus a KL prior term.
/// Generation decodes `z ~ N(0, I)` through the decoder with per-slot
/// argmax.
#[derive(Debug, Clone)]
pub struct PassVaeInner {
    encoder: MlpNet,
    decoder: MlpNet,
}

/// Public VAEPass model.
#[derive(Debug, Clone)]
pub struct VaePass {
    config: VaeConfig,
    nets: PassVaeInner,
    rng: Rng,
    /// Mean ELBO loss per epoch.
    pub loss_history: Vec<f32>,
}

impl VaePass {
    /// Initializes encoder (`x → [μ, logσ²]`) and decoder (`z → logits`).
    #[must_use]
    pub fn new(config: VaeConfig, seed: u64) -> VaePass {
        let mut rng = Rng::seed_from(seed);
        VaePass {
            nets: PassVaeInner {
                encoder: MlpNet::new(&[WIDTH, config.hidden, 2 * config.latent], &mut rng),
                decoder: MlpNet::new(&[config.latent, config.hidden, WIDTH], &mut rng),
            },
            config,
            rng,
            loss_history: Vec::new(),
        }
    }

    /// Trains for `epochs` passes over the encodable subset of `corpus`.
    pub fn train(&mut self, corpus: &[String], epochs: usize) {
        let real: Vec<Vec<f32>> = corpus
            .iter()
            .filter_map(|pw| encoding::encode(pw))
            .collect();
        if real.is_empty() {
            return;
        }
        let mut opt = AdamW::new(self.config.lr);
        opt.weight_decay = 0.0;
        let b = self.config.batch.min(real.len());
        let steps = (real.len() / b).max(1);
        for _ in 0..epochs {
            let mut epoch_loss = 0.0f32;
            for _ in 0..steps {
                epoch_loss += self.step(&real, b, &mut opt);
            }
            self.loss_history.push(epoch_loss / steps as f32);
        }
    }

    /// One ELBO gradient step; returns the batch loss.
    fn step(&mut self, real: &[Vec<f32>], b: usize, opt: &mut AdamW) -> f32 {
        let latent = self.config.latent;
        self.nets
            .encoder
            .visit_params(&mut pagpass_nn::Param::zero_grad);
        self.nets
            .decoder
            .visit_params(&mut pagpass_nn::Param::zero_grad);

        let mut x = Mat::zeros(b, WIDTH);
        for r in 0..b {
            let idx = self.rng.below(real.len());
            x.row_mut(r).copy_from_slice(&real[idx]);
        }
        // Encode to (mu, logvar).
        let enc_out = self.nets.encoder.forward(&x);
        let mut z = Mat::zeros(b, latent);
        let mut eps = Mat::zeros(b, latent);
        for r in 0..b {
            for i in 0..latent {
                let mu = enc_out.get(r, i);
                let logvar = enc_out.get(r, latent + i).clamp(-8.0, 8.0);
                let e = self.rng.normal();
                eps.set(r, i, e);
                z.set(r, i, mu + e * (0.5 * logvar).exp());
            }
        }
        // Decode and reconstruct.
        let logits = self.nets.decoder.forward(&z);
        let inv = 1.0 / b as f32;
        let mut recon_loss = 0.0f32;
        let mut d_logits = Mat::zeros(b, WIDTH);
        for r in 0..b {
            let lrow = logits.row(r);
            let xrow = x.row(r);
            let drow = d_logits.row_mut(r);
            for s in 0..encoding::MAX_LEN {
                let lo = s * SYMBOLS;
                let mut probs = lrow[lo..lo + SYMBOLS].to_vec();
                softmax_in_place(&mut probs);
                let target = xrow[lo..lo + SYMBOLS]
                    .iter()
                    .position(|&v| v == 1.0)
                    // LINT-ALLOW: no-unwrap-in-lib invariant: `encode` built
                    // `x` one-hot; every symbol block has exactly one 1.0.
                    .expect("one-hot input");
                recon_loss -= probs[target].max(1e-12).ln() * inv;
                for (i, &p) in probs.iter().enumerate() {
                    drow[lo + i] = p * inv;
                }
                drow[lo + target] -= inv;
            }
        }
        // KL(q || N(0,I)) and its gradients wrt (mu, logvar).
        let mut kl = 0.0f32;
        let d_z = self.nets.decoder.backward(&d_logits);
        let mut d_enc = Mat::zeros(b, 2 * latent);
        for r in 0..b {
            for i in 0..latent {
                let mu = enc_out.get(r, i);
                let logvar = enc_out.get(r, latent + i).clamp(-8.0, 8.0);
                let var = logvar.exp();
                kl += 0.5 * (mu * mu + var - 1.0 - logvar) * inv;
                let dz = d_z.get(r, i);
                // z = mu + eps·exp(logvar/2)
                let d_mu = dz + self.config.beta * mu * inv;
                let d_logvar = dz * eps.get(r, i) * 0.5 * (0.5 * logvar).exp()
                    + self.config.beta * 0.5 * (var - 1.0) * inv;
                d_enc.set(r, i, d_mu);
                d_enc.set(r, latent + i, d_logvar);
            }
        }
        let _ = self.nets.encoder.backward(&d_enc);

        opt.begin_step();
        self.nets.encoder.visit_params(&mut |p| opt.update(p));
        self.nets.decoder.visit_params(&mut |p| opt.update(p));
        recon_loss + self.config.beta * kl
    }

    /// Generates `n` passwords by decoding standard-normal latents.
    #[must_use]
    pub fn generate(&self, n: usize, seed: u64) -> Vec<String> {
        let mut rng = Rng::seed_from(seed);
        let mut out = Vec::with_capacity(n);
        let b = self.config.batch.max(1);
        while out.len() < n {
            let take = (n - out.len()).min(b);
            let mut z = Mat::zeros(take, self.config.latent);
            for v in z.as_mut_slice() {
                *v = rng.normal();
            }
            let logits = self.nets.decoder.apply(&z);
            for r in 0..take {
                let mut row = logits.row(r).to_vec();
                for slot in row.chunks_mut(SYMBOLS) {
                    softmax_in_place(slot);
                }
                out.push(encoding::decode(&row));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus() -> Vec<String> {
        (0..64).map(|i| format!("aa{:02}zz", i % 16)).collect()
    }

    #[test]
    fn generates_n_passwords_deterministically() {
        let vae = VaePass::new(VaeConfig::tiny(), 1);
        let a = vae.generate(9, 4);
        assert_eq!(a.len(), 9);
        assert_eq!(a, vae.generate(9, 4));
    }

    #[test]
    fn training_reduces_the_elbo() {
        let mut vae = VaePass::new(VaeConfig::tiny(), 2);
        vae.train(&corpus(), 12);
        let h = &vae.loss_history;
        assert_eq!(h.len(), 12);
        assert!(
            h.last().unwrap() < h.first().unwrap(),
            "ELBO should fall: {h:?}"
        );
        assert!(h.iter().all(|l| l.is_finite()));
    }

    #[test]
    fn empty_corpus_is_a_no_op() {
        let mut vae = VaePass::new(VaeConfig::tiny(), 3);
        vae.train(&[], 2);
        assert!(vae.loss_history.is_empty());
    }

    #[test]
    fn trained_vae_output_distribution_moves_toward_corpus() {
        let mut vae = VaePass::new(VaeConfig::tiny(), 4);
        let style = |pwds: &[String]| -> f64 {
            // Fraction of outputs that start with 'a' like the corpus.
            pwds.iter().filter(|p| p.starts_with('a')).count() as f64 / pwds.len() as f64
        };
        let before = style(&vae.generate(60, 9));
        vae.train(&corpus(), 25);
        let after = style(&vae.generate(60, 9));
        assert!(after > before, "style before {before}, after {after}");
    }
}
