//! Golden-output regression pinning the full decode stream.
//!
//! The file `tests/golden/dcgen_seed9.txt` pins model init + D&C-GEN
//! sampling byte for byte: prefix reuse is bit-exact — truncating a cache to
//! a common prefix and re-feeding the remainder produces identical K/V rows,
//! and broadcasting a batch-1 prompt equals per-row priming — so engine
//! refactors must reproduce this output exactly, not merely statistically.
//!
//! Provenance: regenerated under the committed offline verification harness
//! (`tools/offline-stubs/`, RFC-vector-verified ChaCha12 `StdRng`); the
//! original PR-4 file was produced by a since-lost ad-hoc rand stand-in
//! whose stream could not be reconstructed. Regenerate only from
//! `tools/offline-stubs/README.md` instructions, never by hand.

use pagpass_nn::GptConfig;
use pagpass_patterns::PatternDistribution;
use pagpass_tokenizer::VOCAB_SIZE;
use pagpassgpt::{DcGen, DcGenConfig, DcGenOptions, ModelKind, PasswordModel, SchedulerKind};

fn tiny_model() -> PasswordModel {
    PasswordModel::new(
        ModelKind::PagPassGpt,
        GptConfig {
            vocab_size: VOCAB_SIZE,
            ctx_len: 32,
            dim: 16,
            n_layers: 1,
            n_heads: 2,
        },
        5,
    )
}

fn simple_patterns() -> PatternDistribution {
    PatternDistribution::from_passwords(["ab12", "cd34", "ef56", "xy9", "qqq1"].iter().copied())
}

fn golden_config() -> DcGenConfig {
    DcGenConfig {
        threshold: 16,
        seed: 9,
        workers: 1,
        ..DcGenConfig::new(1_500)
    }
}

#[test]
fn dcgen_output_matches_pre_refactor_golden_file() {
    let model = tiny_model();
    let report = DcGen::new(&model, golden_config())
        .run(&simple_patterns())
        .unwrap();
    let got = report.passwords.join("\n") + "\n";
    let want = include_str!("golden/dcgen_seed9.txt");
    assert_eq!(
        got, want,
        "cached generation diverged from the pre-refactor output"
    );
    assert!(
        report.prefix_cache_hits > 0,
        "the run should have reused cached prefix positions"
    );
}

#[test]
fn explicit_dcgen_scheduler_reproduces_the_golden_file() {
    // `--scheduler dcgen` routes through the Scheduler trait like every
    // other kind; the plug-in path must be byte-identical to the golden
    // stream, not merely statistically equivalent.
    let model = tiny_model();
    let report = DcGen::new(
        &model,
        DcGenConfig {
            scheduler: SchedulerKind::Dcgen,
            ..golden_config()
        },
    )
    .run(&simple_patterns())
    .unwrap();
    let got = report.passwords.join("\n") + "\n";
    assert_eq!(
        got,
        include_str!("golden/dcgen_seed9.txt"),
        "the trait-dispatched dcgen scheduler diverged from the golden output"
    );
}

#[test]
fn prefix_reuse_toggle_does_not_change_output() {
    let model = tiny_model();
    let cached = DcGen::new(&model, golden_config())
        .run(&simple_patterns())
        .unwrap();
    let uncached = DcGen::new(&model, golden_config())
        .run_with(
            &simple_patterns(),
            &DcGenOptions {
                no_prefix_reuse: true,
                ..DcGenOptions::default()
            },
        )
        .unwrap();
    assert_eq!(cached.passwords, uncached.passwords);
    assert_eq!(cached.emitted, uncached.emitted);
    assert_eq!(cached.expansions, uncached.expansions);
    // The toggle resets the session before every task and routes leaves
    // through per-row priming, so the baseline run reuses nothing.
    assert!(cached.prefix_cache_hits > 0);
    assert_eq!(uncached.prefix_cache_hits, 0);
}
