//! `pagpass serve` under `--kernel quantized`: scores must be bit-identical
//! across a full server restart.
//!
//! The quantized pack is rebuilt from the f32 weights on every session
//! construction, so a restarted server only reproduces its scores if the
//! pack and the decode kernels are fully deterministic. This lives in its
//! own integration-test binary because the kernel mode is process-wide
//! state; sharing a process with the pinned-mode serve tests would race.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::thread;
use std::time::Duration;

use pagpass_nn::{set_kernel_mode, GptConfig, KernelMode};
use pagpass_telemetry::{parse_json, JsonValue, LogFormat, Telemetry};
use pagpass_tokenizer::VOCAB_SIZE;
use pagpassgpt::{
    run_with_listener, CancelToken, InferenceSession, ModelKind, PasswordModel, ServeConfig,
};

fn tiny() -> PasswordModel {
    PasswordModel::new(
        ModelKind::PagPassGpt,
        GptConfig {
            vocab_size: VOCAB_SIZE,
            ctx_len: 32,
            dim: 16,
            n_layers: 1,
            n_heads: 2,
        },
        3,
    )
}

/// Boots a fresh server instance (fresh model, fresh quantized pack — the
/// same thing a process restart rebuilds), scores `pws`, shuts down, and
/// returns password → `ln_prob` as the exact bits that crossed the wire.
fn serve_once(pws: &[&str]) -> HashMap<String, f64> {
    let model = tiny();
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("local addr");
    let cancel = CancelToken::new();
    let tel = Telemetry::to_writer(LogFormat::Json, Box::new(std::io::sink()));
    let cfg = ServeConfig::default();
    thread::scope(|s| {
        let server = s.spawn(|| {
            run_with_listener(&model, &listener, &cfg, &cancel, &tel, None).expect("serve")
        });
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .expect("read timeout");
        let mut batch = String::new();
        for (i, pw) in pws.iter().enumerate() {
            batch.push_str(&format!("{{\"password\":\"{pw}\",\"id\":{i}}}\n"));
        }
        stream.write_all(batch.as_bytes()).expect("send requests");
        let mut reader = BufReader::new(stream);
        let mut scores = HashMap::new();
        for _ in 0..pws.len() {
            let mut line = String::new();
            reader.read_line(&mut line).expect("read response line");
            let value = parse_json(line.trim()).expect("response is valid JSON");
            assert_eq!(value.get("ok"), Some(&JsonValue::Bool(true)), "{value:?}");
            let id = value
                .get("id")
                .and_then(JsonValue::as_f64)
                .expect("response id") as usize;
            let ln_prob = value
                .get("ln_prob")
                .and_then(JsonValue::as_f64)
                .expect("scored response carries ln_prob");
            scores.insert(pws[id].to_string(), ln_prob);
        }
        cancel.cancel();
        let report = server.join().expect("server thread");
        assert!(report.reconciles(), "{report:?}");
        scores
    })
}

#[test]
fn quantized_scores_survive_a_server_restart_bit_identically() {
    set_kernel_mode(KernelMode::Quantized);
    let pws = ["hello123", "Pass123$", "abc12345", "qwerty99"];

    let first = serve_once(&pws);
    let second = serve_once(&pws);
    for pw in &pws {
        assert_eq!(
            first[*pw].to_bits(),
            second[*pw].to_bits(),
            "{pw}: restarted quantized server must reproduce the exact bits"
        );
    }

    // The served bits also match a solo quantized session — serve adds no
    // numeric drift on top of the deterministic quantized decode.
    let model = tiny();
    for pw in &pws {
        let mut solo = InferenceSession::new(&model);
        let want = solo.log_probability(pw).expect("scorable password");
        assert_eq!(first[*pw].to_bits(), want.to_bits(), "{pw}");
    }

    // And they genuinely came from the quantized kernels, not a silent
    // fall-through to f32: the two modes disagree in the low bits.
    set_kernel_mode(KernelMode::Blocked);
    let f32_model = tiny();
    let mut f32_session = InferenceSession::new(&f32_model);
    let f32_score = f32_session.log_probability(pws[0]).expect("scorable");
    set_kernel_mode(KernelMode::Quantized);
    assert_ne!(first[pws[0]].to_bits(), f32_score.to_bits());
}
