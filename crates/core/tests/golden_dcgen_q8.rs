//! Golden-output regression pinning the quantized decode stream.
//!
//! The file `tests/golden/dcgen_seed9_q8.txt` pins model init + D&C-GEN
//! sampling under `KernelMode::Quantized` byte for byte — the same run as
//! `golden_dcgen.rs` but with every decode matmul routed through the
//! pack-once int8 kernels. The quantized stream is deterministic across
//! thread counts *and* SIMD dispatch: per-block dot products are exact
//! i32 sums whether computed by the AVX2 or the portable kernel, and the
//! f32 scale accumulation visits blocks in the same order either way.
//! The CI `quantized-equivalence` job re-runs this binary under
//! `PAGPASS_THREADS=1`, `PAGPASS_THREADS=4`, and `PAGPASS_FORCE_PORTABLE=1`.
//!
//! This lives in its own test binary because the kernel mode is
//! process-wide; the f32 golden (`golden_dcgen.rs`) must keep running
//! under the default mode.
//!
//! Provenance: generated under the committed offline verification harness
//! (`tools/offline-stubs/`, RFC-vector-verified ChaCha12 `StdRng`).
//! Regenerate only from `tools/offline-stubs/README.md` instructions,
//! never by hand.

use pagpass_nn::{set_force_portable, set_kernel_mode, GptConfig, KernelMode};
use pagpass_patterns::PatternDistribution;
use pagpass_tokenizer::VOCAB_SIZE;
use pagpassgpt::{DcGen, DcGenConfig, ModelKind, PasswordModel};

fn tiny_model() -> PasswordModel {
    PasswordModel::new(
        ModelKind::PagPassGpt,
        GptConfig {
            vocab_size: VOCAB_SIZE,
            ctx_len: 32,
            dim: 16,
            n_layers: 1,
            n_heads: 2,
        },
        5,
    )
}

fn simple_patterns() -> PatternDistribution {
    PatternDistribution::from_passwords(["ab12", "cd34", "ef56", "xy9", "qqq1"].iter().copied())
}

fn golden_config() -> DcGenConfig {
    DcGenConfig {
        threshold: 16,
        seed: 9,
        workers: 1,
        ..DcGenConfig::new(1_500)
    }
}

fn quantized_stream() -> String {
    set_kernel_mode(KernelMode::Quantized);
    let model = tiny_model();
    let report = DcGen::new(&model, golden_config())
        .run(&simple_patterns())
        .unwrap();
    report.passwords.join("\n") + "\n"
}

#[test]
fn quantized_dcgen_output_is_pinned_and_dispatch_independent() {
    let want = include_str!("golden/dcgen_seed9_q8.txt");
    // First pass under the process default dispatch (AVX2 where the CPU
    // has it, unless PAGPASS_FORCE_PORTABLE already forced scalar).
    assert_eq!(
        quantized_stream(),
        want,
        "quantized generation diverged from the pinned output"
    );
    // Second pass forced onto the portable scalar kernels: the int8 dot
    // products are exact integers under either dispatch, so the sampled
    // stream must be bitwise identical, not merely close.
    set_force_portable(true);
    let portable = quantized_stream();
    set_force_portable(false);
    assert_eq!(
        portable, want,
        "portable-dispatch quantized stream diverged from the pinned output"
    );
}

#[test]
fn quantized_stream_differs_from_the_f32_golden() {
    // Documents that `--kernel quantized` is a genuinely different decode:
    // the int8 logits perturb sampling enough that the two pinned streams
    // are not the same file (which is why journals record the kernel).
    assert_ne!(
        include_str!("golden/dcgen_seed9_q8.txt"),
        include_str!("golden/dcgen_seed9.txt"),
    );
}

/// Regenerates the golden file. Ignored in normal runs; see
/// `tools/offline-stubs/README.md` before using it — the bytes are only
/// meaningful when produced under the committed offline harness.
#[test]
#[ignore = "writes the golden file; run explicitly under tools/offline-stubs"]
fn regenerate_quantized_golden() {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/dcgen_seed9_q8.txt"
    );
    std::fs::write(path, quantized_stream()).unwrap();
}
