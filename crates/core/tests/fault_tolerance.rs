//! Fault-injection tests for the supervised D&C-GEN pool and the robust
//! training loop: worker panics, simulated kills with journal resume,
//! sidecar write failures, deadlines, and corrupted weight files.

use std::path::PathBuf;
use std::time::Duration;

use pagpass_nn::GptConfig;
use pagpass_tokenizer::VOCAB_SIZE;
use pagpassgpt::{
    CancelToken, CoreError, DcGen, DcGenConfig, DcGenJournal, DcGenOptions, FaultPlan, ModelKind,
    PasswordModel, PasswordSink,
};

fn tiny_model() -> PasswordModel {
    PasswordModel::new(
        ModelKind::PagPassGpt,
        GptConfig {
            vocab_size: VOCAB_SIZE,
            ctx_len: 32,
            dim: 16,
            n_layers: 1,
            n_heads: 2,
        },
        5,
    )
}

fn patterns() -> pagpass_patterns::PatternDistribution {
    pagpass_patterns::PatternDistribution::from_passwords(
        ["ab12", "cd34", "ef56", "xy9", "qqq1"].iter().copied(),
    )
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("pagpass_fault_tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    std::fs::remove_file(&path).ok();
    path
}

/// Single-worker config: deterministic ordering, so interrupted + resumed
/// output can be compared byte for byte against an uninterrupted run.
fn config(total: u64, threshold: u64) -> DcGenConfig {
    DcGenConfig {
        threshold,
        workers: 1,
        ..DcGenConfig::new(total)
    }
}

#[test]
fn panicking_task_is_retried_and_output_is_unchanged() {
    let model = tiny_model();
    let clean = DcGen::new(&model, config(200, 16))
        .run(&patterns())
        .unwrap();
    assert!(!clean.passwords.is_empty());

    let fault = FaultPlan::new().panic_task_once(0).panic_task_once(2);
    let opts = DcGenOptions {
        fault: Some(&fault),
        ..DcGenOptions::default()
    };
    let faulty = DcGen::new(&model, config(200, 16))
        .run_with(&patterns(), &opts)
        .unwrap();

    assert_eq!(faulty.retries, 2, "both injected panics must be retried");
    assert!(faulty.failed_tasks.is_empty());
    assert_eq!(
        faulty.passwords, clean.passwords,
        "a retried task reuses its id and RNG stream, so output is identical"
    );
}

#[test]
fn task_that_always_panics_lands_in_failed_tasks_not_a_crash() {
    let model = tiny_model();
    // Task 1 is a minority pattern's root; its subtree is lost, while the
    // dominant pattern (task 0) keeps generating.
    let fault = FaultPlan::new().panic_task_always(1);
    let opts = DcGenOptions {
        fault: Some(&fault),
        ..DcGenOptions::default()
    };
    let report = DcGen::new(&model, config(200, 16))
        .run_with(&patterns(), &opts)
        .unwrap();

    assert_eq!(report.failed_tasks.len(), 1);
    assert!(report.failed_tasks[0].error.contains("injected fault"));
    assert!(
        report.retries >= 1,
        "the retry budget is spent before giving up"
    );
    assert!(
        !report.passwords.is_empty(),
        "the other patterns' tasks still run to completion"
    );
    assert!(
        !report.interrupted,
        "an abandoned task is not an interruption"
    );
}

#[test]
fn kill_and_resume_reproduces_the_uninterrupted_run_exactly() {
    let model = tiny_model();
    let journal_path = tmp("resume.journal");
    let full = DcGen::new(&model, config(400, 8)).run(&patterns()).unwrap();

    // Simulated kill: cancel after 3 completed tasks, journal everything.
    let fault = FaultPlan::new().cancel_after_tasks(3);
    let opts = DcGenOptions {
        journal: Some(&journal_path),
        fault: Some(&fault),
        ..DcGenOptions::default()
    };
    let partial = DcGen::new(&model, config(400, 8))
        .run_with(&patterns(), &opts)
        .unwrap();
    assert!(
        partial.interrupted,
        "tasks must remain pending after the kill"
    );
    assert!(partial.emitted < full.emitted);

    let journal = DcGenJournal::load(&journal_path).unwrap();
    assert_eq!(journal.emitted, partial.emitted);
    assert!(!journal.tasks.is_empty());

    let resumed = DcGen::resume(&model, &journal, &DcGenOptions::default()).unwrap();
    assert!(!resumed.interrupted);
    assert_eq!(resumed.emitted, full.emitted);

    let mut stitched = partial.passwords.clone();
    stitched.extend(resumed.passwords.iter().cloned());
    assert_eq!(
        stitched, full.passwords,
        "interrupted + resumed output must be byte-identical to one uninterrupted run"
    );
    std::fs::remove_file(journal_path).ok();
}

#[test]
fn journal_write_failures_are_counted_but_never_fatal() {
    let model = tiny_model();
    let journal_path = tmp("flaky.journal");
    let fault = FaultPlan::new().fail_write(0).fail_write(1);
    let cfg = DcGenConfig {
        journal_every: 1,
        ..config(200, 16)
    };
    let opts = DcGenOptions {
        journal: Some(&journal_path),
        fault: Some(&fault),
        ..DcGenOptions::default()
    };
    let report = DcGen::new(&model, cfg)
        .run_with(&patterns(), &opts)
        .unwrap();
    assert_eq!(report.journal_errors, 2);
    assert!(!report.passwords.is_empty());
    assert!(journal_path.exists(), "later journal writes still land");
    std::fs::remove_file(journal_path).ok();
}

#[test]
fn zero_deadline_drains_immediately_with_partial_results() {
    let model = tiny_model();
    let opts = DcGenOptions {
        deadline: Some(Duration::ZERO),
        ..DcGenOptions::default()
    };
    let report = DcGen::new(&model, config(400, 8))
        .run_with(&patterns(), &opts)
        .unwrap();
    assert!(report.interrupted);
    assert_eq!(report.passwords.len() as u64, report.emitted);
}

#[test]
fn pre_cancelled_token_stops_before_any_work() {
    let model = tiny_model();
    let cancel = CancelToken::new();
    cancel.cancel();
    let opts = DcGenOptions {
        cancel: Some(&cancel),
        ..DcGenOptions::default()
    };
    let report = DcGen::new(&model, config(400, 8))
        .run_with(&patterns(), &opts)
        .unwrap();
    assert!(report.interrupted);
    assert_eq!(report.emitted, 0);
}

#[test]
fn sink_streams_everything_and_report_stays_empty() {
    struct Collect(std::sync::Mutex<Vec<String>>);
    impl PasswordSink for Collect {
        fn emit(&self, batch: &[String]) -> std::io::Result<()> {
            self.0.lock().unwrap().extend(batch.iter().cloned());
            Ok(())
        }
    }
    let model = tiny_model();
    let clean = DcGen::new(&model, config(200, 16))
        .run(&patterns())
        .unwrap();

    let sink = Collect(std::sync::Mutex::new(Vec::new()));
    let opts = DcGenOptions {
        sink: Some(&sink),
        ..DcGenOptions::default()
    };
    let report = DcGen::new(&model, config(200, 16))
        .run_with(&patterns(), &opts)
        .unwrap();
    assert!(
        report.passwords.is_empty(),
        "streamed passwords are not buffered"
    );
    assert_eq!(report.emitted as usize, sink.0.lock().unwrap().len());
    assert_eq!(*sink.0.lock().unwrap(), clean.passwords);
}

#[test]
fn failing_sink_aborts_with_an_io_error_after_journaling() {
    struct Broken;
    impl PasswordSink for Broken {
        fn emit(&self, _batch: &[String]) -> std::io::Result<()> {
            Err(std::io::Error::other("disk full"))
        }
    }
    let model = tiny_model();
    let journal_path = tmp("sinkfail.journal");
    let opts = DcGenOptions {
        sink: Some(&Broken),
        journal: Some(&journal_path),
        ..DcGenOptions::default()
    };
    let err = DcGen::new(&model, config(200, 16)).run_with(&patterns(), &opts);
    assert!(matches!(err, Err(CoreError::Io(_))));
    assert!(
        journal_path.exists(),
        "the final journal is written even when the sink fails, so the run is resumable"
    );
    std::fs::remove_file(journal_path).ok();
}

#[test]
fn bit_flipped_weight_file_is_rejected_on_load() {
    let mut model = tiny_model();
    let path = tmp("weights.bin");
    model.save(&path).unwrap();

    let mut bytes = std::fs::read(&path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(&path, &bytes).unwrap();

    let err = PasswordModel::load(ModelKind::PagPassGpt, &path);
    assert!(
        matches!(
            err,
            Err(CoreError::Load(
                pagpass_nn::LoadError::ChecksumMismatch { .. }
            ))
        ),
        "got {err:?}"
    );
    std::fs::remove_file(path).ok();
}

#[test]
fn truncated_weight_file_is_rejected_on_load() {
    let mut model = tiny_model();
    let path = tmp("weights_trunc.bin");
    model.save(&path).unwrap();

    let bytes = std::fs::read(&path).unwrap();
    std::fs::write(&path, &bytes[..bytes.len() - 9]).unwrap();

    assert!(PasswordModel::load(ModelKind::PagPassGpt, &path).is_err());
    std::fs::remove_file(path).ok();
}
