//! SOPG ordered-enumeration guarantees, end to end through the public
//! `DcGen` API: emission log-probabilities are non-increasing and the
//! repeat rate is exactly 0.0 — under any frontier cap, any worker
//! count, and across a kill + journal resume.

use std::collections::HashSet;
use std::path::PathBuf;

use pagpass_nn::GptConfig;
use pagpass_patterns::PatternDistribution;
use pagpass_tokenizer::VOCAB_SIZE;
use pagpassgpt::{
    DcGen, DcGenConfig, DcGenJournal, DcGenOptions, DcGenReport, FaultPlan, ModelKind,
    PasswordModel, SchedulerKind,
};
use proptest::prelude::*;

fn tiny_model() -> PasswordModel {
    PasswordModel::new(
        ModelKind::PagPassGpt,
        GptConfig {
            vocab_size: VOCAB_SIZE,
            ctx_len: 32,
            dim: 16,
            n_layers: 1,
            n_heads: 2,
        },
        5,
    )
}

fn patterns() -> PatternDistribution {
    PatternDistribution::from_passwords(["ab12", "cd34", "ef56", "xy9", "qqq1"].iter().copied())
}

fn sopg_config(total: u64, frontier_cap: u64, workers: usize) -> DcGenConfig {
    DcGenConfig {
        threshold: 16,
        seed: 9,
        workers,
        scheduler: SchedulerKind::Sopg,
        frontier_cap,
        ..DcGenConfig::new(total)
    }
}

fn run_sopg(total: u64, frontier_cap: u64, workers: usize) -> DcGenReport {
    DcGen::new(&tiny_model(), sopg_config(total, frontier_cap, workers))
        .run(&patterns())
        .unwrap()
}

/// The two SOPG invariants plus structural sanity, shared by the direct
/// tests and the property tests.
fn check_ordered_emission(report: &DcGenReport, total: u64) {
    assert!(report.emitted > 0, "sopg emitted nothing");
    assert!(report.emitted <= total, "emission exceeded the budget");
    assert_eq!(
        report.passwords.len() as u64,
        report.emitted,
        "in-memory emission must match the emitted count"
    );
    assert_eq!(
        report.emission_log_probs.len(),
        report.passwords.len(),
        "every emission carries its log-probability"
    );
    assert!(
        report
            .emission_log_probs
            .iter()
            .all(|lp| lp.is_finite() && *lp <= 0.0),
        "emission log-probs must be finite and non-positive"
    );
    assert!(
        report.emission_log_probs.windows(2).all(|w| w[0] >= w[1]),
        "emission log-probs must be non-increasing"
    );
    let unique: HashSet<&str> = report.passwords.iter().map(String::as_str).collect();
    assert_eq!(
        unique.len(),
        report.passwords.len(),
        "sopg repeat rate must be exactly zero"
    );
    let dist = patterns();
    assert!(
        report
            .passwords
            .iter()
            .all(|pw| dist.top(10).iter().any(|e| e.pattern.matches(pw))),
        "every emission conforms to a corpus pattern"
    );
}

#[test]
fn emission_is_ordered_and_repeat_free_across_frontier_caps() {
    for cap in [0u64, 500, 64, 8] {
        let report = run_sopg(300, cap, 1);
        check_ordered_emission(&report, 300);
        if cap == 0 {
            assert_eq!(report.frontier_evictions, 0, "uncapped run evicted");
        }
    }
    // A cap smaller than one expansion's fan-out must force evictions —
    // and the ordering/uniqueness guarantees held above regardless.
    let tight = run_sopg(300, 8, 1);
    assert!(tight.frontier_evictions > 0, "cap 8 never evicted");
}

#[test]
fn eviction_under_a_tight_cap_is_deterministic() {
    let a = run_sopg(250, 8, 1);
    let b = run_sopg(250, 8, 1);
    assert_eq!(a.passwords, b.passwords);
    assert_eq!(a.emission_log_probs, b.emission_log_probs);
    assert_eq!(a.frontier_evictions, b.frontier_evictions);
}

#[test]
fn worker_count_does_not_change_the_emission_order() {
    // The in-flight barrier delays emission until no pending expansion
    // could still beat the frontier's best complete node, so the emitted
    // sequence is the top-N by probability no matter the interleaving.
    let solo = run_sopg(300, 0, 1);
    let pooled = run_sopg(300, 0, 3);
    assert_eq!(solo.passwords, pooled.passwords);
    assert_eq!(solo.emission_log_probs, pooled.emission_log_probs);
}

#[test]
fn kill_and_resume_preserves_order_and_uniqueness() {
    let dir = std::env::temp_dir().join("pagpass_sched_sopg");
    std::fs::create_dir_all(&dir).unwrap();
    let journal_path: PathBuf = dir.join("sopg.journal");
    std::fs::remove_file(&journal_path).ok();

    let model = tiny_model();
    let full = DcGen::new(&model, sopg_config(300, 0, 1))
        .run(&patterns())
        .unwrap();
    check_ordered_emission(&full, 300);

    let fault = FaultPlan::new().cancel_after_tasks(3);
    let opts = DcGenOptions {
        journal: Some(&journal_path),
        fault: Some(&fault),
        ..DcGenOptions::default()
    };
    let partial = DcGen::new(&model, sopg_config(300, 0, 1))
        .run_with(&patterns(), &opts)
        .unwrap();
    assert!(partial.interrupted, "the kill left no pending frontier");
    assert!(partial.emitted < full.emitted);

    let journal = DcGenJournal::load(&journal_path).unwrap();
    assert_eq!(journal.scheduler, SchedulerKind::Sopg);
    assert_eq!(journal.emitted, partial.emitted);

    let resumed = DcGen::resume(&model, &journal, &DcGenOptions::default()).unwrap();
    assert!(!resumed.interrupted);

    let mut stitched = partial.passwords.clone();
    stitched.extend(resumed.passwords.iter().cloned());
    assert_eq!(
        stitched, full.passwords,
        "interrupted + resumed emission must equal one uninterrupted run"
    );
    std::fs::remove_file(journal_path).ok();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any frontier cap and any budget: emission stays ordered and
    /// repeat-free. Caps below the per-expansion fan-out stress the
    /// eviction path; large ones never evict.
    #[test]
    fn ordered_repeat_free_under_any_cap(cap in 0u64..256, total in 50u64..250) {
        let report = run_sopg(total, cap, 1);
        check_ordered_emission(&report, total);
    }
}
