//! Integration tests for the HTTP observability plane: `GET /metrics`,
//! `/healthz`, `/statusz`, and `POST /score` bridged to the same engine as
//! the NDJSON protocol — bit-identical scores, one reconciliation
//! invariant, and a drain that monitors can observe.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::thread;
use std::time::Duration;

use pagpass_nn::GptConfig;
use pagpass_telemetry::{parse_json, JsonValue, LogFormat, Telemetry};
use pagpass_tokenizer::VOCAB_SIZE;
use pagpassgpt::{
    run_with_listeners, CancelToken, InferenceSession, ModelKind, PasswordModel, ServeConfig,
    ServeReport,
};

fn tiny() -> PasswordModel {
    PasswordModel::new(
        ModelKind::PagPassGpt,
        GptConfig {
            vocab_size: VOCAB_SIZE,
            ctx_len: 32,
            dim: 16,
            n_layers: 1,
            n_heads: 2,
        },
        3,
    )
}

fn quiet_tel() -> Telemetry {
    Telemetry::to_writer(LogFormat::Json, Box::new(std::io::sink()))
}

/// One parsed HTTP response.
struct HttpResponse {
    status: u16,
    headers: HashMap<String, String>,
    body: String,
}

/// Writes one request over `stream` and reads the framed response.
fn http_roundtrip(
    reader: &mut BufReader<TcpStream>,
    method: &str,
    path: &str,
    body: Option<&str>,
    close: bool,
) -> HttpResponse {
    let mut req = format!("{method} {path} HTTP/1.1\r\nHost: test\r\n");
    if let Some(b) = body {
        req.push_str(&format!("Content-Length: {}\r\n", b.len()));
    }
    if close {
        req.push_str("Connection: close\r\n");
    }
    req.push_str("\r\n");
    if let Some(b) = body {
        req.push_str(b);
    }
    reader
        .get_mut()
        .write_all(req.as_bytes())
        .expect("send request");
    read_response(reader)
}

fn read_response(reader: &mut BufReader<TcpStream>) -> HttpResponse {
    let mut status_line = String::new();
    reader.read_line(&mut status_line).expect("status line");
    let status: u16 = status_line
        .split_ascii_whitespace()
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    let mut headers = HashMap::new();
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).expect("header line");
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            headers.insert(name.trim().to_ascii_lowercase(), value.trim().to_string());
        }
    }
    let len: usize = headers
        .get("content-length")
        .expect("Content-Length framing")
        .parse()
        .expect("numeric Content-Length");
    let mut body = vec![0u8; len];
    reader.read_exact(&mut body).expect("response body");
    HttpResponse {
        status,
        headers,
        body: String::from_utf8(body).expect("utf8 body"),
    }
}

/// Runs a server with both planes on ephemeral ports, drives it with
/// `client(ndjson_addr, http_addr)`, cancels, and returns the report.
fn with_http_server(
    cfg: ServeConfig,
    client: impl FnOnce(std::net::SocketAddr, std::net::SocketAddr, &CancelToken) + Send,
) -> ServeReport {
    let model = tiny();
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind NDJSON listener");
    let http_listener = TcpListener::bind("127.0.0.1:0").expect("bind HTTP listener");
    let addr = listener.local_addr().expect("local addr");
    let http_addr = http_listener.local_addr().expect("http addr");
    let cancel = CancelToken::new();
    let tel = quiet_tel();
    thread::scope(|s| {
        let server = s.spawn(|| {
            run_with_listeners(
                &model,
                &listener,
                Some(&http_listener),
                &cfg,
                &cancel,
                &tel,
                None,
            )
            .expect("serve")
        });
        client(addr, http_addr, &cancel);
        cancel.cancel();
        server.join().expect("server thread")
    })
}

fn connect_http(addr: std::net::SocketAddr) -> BufReader<TcpStream> {
    let stream = TcpStream::connect(addr).expect("connect http");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("read timeout");
    BufReader::new(stream)
}

#[test]
fn http_plane_serves_all_endpoints_with_bit_identical_scores() {
    let model = tiny();
    let pw = "hello123";
    let mut solo = InferenceSession::new(&model);
    let want = solo.log_probability(pw).expect("scorable password");

    let report = with_http_server(ServeConfig::default(), |ndjson_addr, http_addr, _cancel| {
        // Score the same password over the NDJSON plane first.
        let mut nd = TcpStream::connect(ndjson_addr).expect("connect ndjson");
        nd.set_read_timeout(Some(Duration::from_secs(30)))
            .expect("read timeout");
        nd.write_all(format!("{{\"password\":\"{pw}\",\"id\":7}}\n").as_bytes())
            .expect("send ndjson request");
        let mut nd_reader = BufReader::new(nd);
        let mut nd_line = String::new();
        nd_reader.read_line(&mut nd_line).expect("ndjson response");

        // All HTTP requests ride one keep-alive connection.
        let mut http = connect_http(http_addr);

        let resp = http_roundtrip(
            &mut http,
            "POST",
            "/score",
            Some(&format!("{{\"password\":\"{pw}\",\"id\":7}}")),
            false,
        );
        assert_eq!(resp.status, 200, "{}", resp.body);
        assert_eq!(
            resp.headers.get("content-type").map(String::as_str),
            Some("application/json")
        );
        // Bit-identical across planes: the HTTP body IS the NDJSON
        // response line, and both parse back to the solo score exactly.
        assert_eq!(resp.body, nd_line, "planes must agree byte-for-byte");
        let parsed = parse_json(resp.body.trim()).expect("score body is JSON");
        assert_eq!(
            parsed.get("ln_prob").and_then(JsonValue::as_f64),
            Some(want),
            "{}",
            resp.body
        );

        let resp = http_roundtrip(&mut http, "GET", "/healthz", None, false);
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body, "ok\n");

        let resp = http_roundtrip(&mut http, "GET", "/statusz", None, false);
        assert_eq!(resp.status, 200);
        let status = parse_json(resp.body.trim()).expect("statusz is JSON");
        assert_eq!(
            status.get("queue_cap").and_then(JsonValue::as_f64),
            Some(ServeConfig::default().queue_cap as f64)
        );
        assert_eq!(
            status.get("admitted").and_then(JsonValue::as_f64),
            Some(2.0),
            "{}",
            resp.body
        );
        assert!(
            status.get("recent_spans").is_some(),
            "statusz exposes the span ring"
        );

        let resp = http_roundtrip(&mut http, "GET", "/metrics", None, false);
        assert_eq!(resp.status, 200);
        assert!(
            resp.headers
                .get("content-type")
                .is_some_and(|c| c.starts_with("text/plain")),
            "{:?}",
            resp.headers
        );
        // Both planes feed the same counters: one NDJSON score plus one
        // HTTP score, both completed by the time their responses landed.
        assert!(
            resp.body.contains("serve_admitted_total 2"),
            "{}",
            resp.body
        );
        assert!(
            resp.body.contains("serve_completed_total 2"),
            "{}",
            resp.body
        );
        assert!(
            resp.body.contains("# TYPE serve_latency_ms histogram"),
            "{}",
            resp.body
        );

        let resp = http_roundtrip(&mut http, "GET", "/nope", None, false);
        assert_eq!(resp.status, 404);
        let resp = http_roundtrip(&mut http, "DELETE", "/metrics", None, true);
        assert_eq!(resp.status, 405);
    });
    assert_eq!(report.admitted, 2);
    assert_eq!(report.completed, 2);
    assert!(report.reconciles(), "{report:?}");
    assert_eq!(report.lost, 0);
}

#[test]
fn healthz_flips_to_draining_on_a_held_connection_before_the_plane_exits() {
    let report = with_http_server(ServeConfig::default(), |_ndjson_addr, http_addr, cancel| {
        let mut http = connect_http(http_addr);
        let resp = http_roundtrip(&mut http, "GET", "/healthz", None, false);
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body, "ok\n");

        // Begin the drain, then poll again on the SAME keep-alive
        // connection: the plane answers 503 draining instead of
        // vanishing, because the HTTP stop token only fires after the
        // workers have drained every admitted request.
        cancel.cancel();
        let resp = http_roundtrip(&mut http, "GET", "/healthz", None, true);
        assert_eq!(resp.status, 503);
        assert_eq!(resp.body, "draining\n");
    });
    assert!(report.reconciles(), "{report:?}");
    assert_eq!(report.admitted, 0);
}

#[test]
fn http_score_rejections_map_to_status_codes() {
    // queue_cap 1 with zero sessions is not possible (sessions floor at
    // 1), so overload is exercised in CI via the load harness; here the
    // malformed-body path is checked instead.
    let report = with_http_server(
        ServeConfig::default(),
        |_ndjson_addr, http_addr, _cancel| {
            let mut http = connect_http(http_addr);
            let resp = http_roundtrip(&mut http, "POST", "/score", Some("not json"), false);
            assert_eq!(resp.status, 400);
            let parsed = parse_json(resp.body.trim()).expect("error body is JSON");
            assert!(
                parsed
                    .get("error")
                    .and_then(JsonValue::as_str)
                    .is_some_and(|m| m.contains("bad request")),
                "{}",
                resp.body
            );

            // A trace_id on the HTTP plane is echoed exactly as over NDJSON.
            let resp = http_roundtrip(
                &mut http,
                "POST",
                "/score",
                Some("{\"password\":\"hello123\",\"id\":1,\"trace_id\":42}"),
                true,
            );
            assert_eq!(resp.status, 200);
            let parsed = parse_json(resp.body.trim()).expect("score body is JSON");
            assert_eq!(
                parsed.get("trace_id").and_then(JsonValue::as_f64),
                Some(42.0),
                "{}",
                resp.body
            );
        },
    );
    assert_eq!(report.bad_requests, 1);
    assert_eq!(report.admitted, 1);
    assert!(report.reconciles(), "{report:?}");
}
