//! End-to-end tests for `pagpass serve` over a loopback socket: the full
//! `TCP → admission queue → batching workers → writer` pipeline, including
//! the drain on cancellation and the post-drain reconciliation invariant.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Duration;

use pagpass_nn::GptConfig;
use pagpass_telemetry::{parse_json, JsonValue, LogFormat, Telemetry};
use pagpass_tokenizer::VOCAB_SIZE;
use pagpassgpt::{
    run_with_listener, CancelToken, InferenceSession, ModelKind, PasswordModel, ServeConfig,
    ServeReport,
};

fn tiny() -> PasswordModel {
    PasswordModel::new(
        ModelKind::PagPassGpt,
        GptConfig {
            vocab_size: VOCAB_SIZE,
            ctx_len: 32,
            dim: 16,
            n_layers: 1,
            n_heads: 2,
        },
        3,
    )
}

fn quiet_tel() -> Telemetry {
    Telemetry::to_writer(LogFormat::Json, Box::new(std::io::sink()))
}

/// Cloneable in-memory sink capturing the server's JSONL output.
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl SharedBuf {
    fn contents(&self) -> String {
        String::from_utf8(self.0.lock().expect("buf lock").clone()).expect("utf8 log")
    }
}

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().expect("buf lock").extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// Runs a server on an ephemeral port, drives it with `client`, cancels,
/// and returns the drained report.
fn with_server(cfg: ServeConfig, client: impl FnOnce(std::net::SocketAddr) + Send) -> ServeReport {
    let model = tiny();
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("local addr");
    let cancel = CancelToken::new();
    let tel = quiet_tel();
    thread::scope(|s| {
        let server = s.spawn(|| {
            run_with_listener(&model, &listener, &cfg, &cancel, &tel, None).expect("serve")
        });
        client(addr);
        cancel.cancel();
        server.join().expect("server thread")
    })
}

/// Reads `n` response lines, keyed by their `id` field (`None` for
/// responses without one).
fn read_responses(reader: &mut impl BufRead, n: usize) -> HashMap<Option<u64>, JsonValue> {
    let mut got = HashMap::new();
    for _ in 0..n {
        let mut line = String::new();
        reader.read_line(&mut line).expect("read response line");
        let value = parse_json(line.trim()).expect("response is valid JSON");
        let id = value
            .get("id")
            .and_then(JsonValue::as_f64)
            .map(|v| v as u64);
        got.insert(id, value);
    }
    got
}

fn is_true(value: Option<&JsonValue>) -> bool {
    matches!(value, Some(JsonValue::Bool(true)))
}

#[test]
fn tcp_scores_are_bit_identical_to_solo_and_the_drain_reconciles() {
    let model = tiny();
    let pws = ["hello123", "Pass123$", "abc12345", "has space", "qwerty99"];
    let report = with_server(ServeConfig::default(), |addr| {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .expect("read timeout");
        let mut batch = String::new();
        for (i, pw) in pws.iter().enumerate() {
            batch.push_str(&format!("{{\"password\":\"{pw}\",\"id\":{i}}}\n"));
        }
        stream.write_all(batch.as_bytes()).expect("send requests");
        let mut reader = BufReader::new(stream);
        let got = read_responses(&mut reader, pws.len());
        for (i, pw) in pws.iter().enumerate() {
            let response = &got[&Some(i as u64)];
            let mut solo = InferenceSession::new(&model);
            match solo.log_probability(pw) {
                Ok(want) => {
                    assert!(is_true(response.get("ok")), "{pw}: {response:?}");
                    // Full-precision transport: the served score parses
                    // back bit-identical to the solo score, not merely
                    // close to it.
                    assert_eq!(
                        response.get("ln_prob").and_then(JsonValue::as_f64),
                        Some(want),
                        "{pw}"
                    );
                }
                Err(e) => {
                    assert!(!is_true(response.get("ok")), "{pw}");
                    let msg = response
                        .get("error")
                        .and_then(JsonValue::as_str)
                        .expect("unscorable responses carry an error");
                    assert_eq!(msg, e.to_string(), "{pw}");
                }
            }
        }
    });
    assert_eq!(report.admitted, pws.len() as u64);
    assert_eq!(report.completed, pws.len() as u64);
    assert!(report.reconciles(), "{report:?}");
    assert_eq!(report.lost, 0);
    assert_eq!(report.bad_requests, 0);
}

#[test]
fn malformed_lines_answer_errors_and_zero_deadlines_are_shed() {
    let report = with_server(ServeConfig::default(), |addr| {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .expect("read timeout");
        stream
            .write_all(
                b"this is not json\n\
                  {\"password\":\"hello123\",\"id\":1,\"deadline_ms\":0}\n\
                  {\"password\":\"Pass123$\",\"id\":2}\n",
            )
            .expect("send requests");
        let mut reader = BufReader::new(stream);
        let got = read_responses(&mut reader, 3);
        // The garbage line is answered (without an id) but never admitted.
        let bad = &got[&None];
        assert!(!is_true(bad.get("ok")));
        assert!(bad
            .get("error")
            .and_then(JsonValue::as_str)
            .is_some_and(|m| m.contains("bad request")));
        // An already-expired deadline is shed before scoring.
        let shed = &got[&Some(1)];
        assert!(is_true(shed.get("shed")), "{shed:?}");
        // The healthy request is unaffected.
        assert!(is_true(got[&Some(2)].get("ok")));
    });
    assert_eq!(report.bad_requests, 1);
    assert_eq!(report.admitted, 2);
    assert_eq!(report.shed, 1);
    assert_eq!(report.completed, 1);
    assert!(report.reconciles(), "{report:?}");
}

#[test]
fn client_trace_id_is_echoed_and_stamped_on_every_exported_span() {
    let model = tiny();
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("local addr");
    let cancel = CancelToken::new();
    let buf = SharedBuf::default();
    let tel = Telemetry::to_writer(LogFormat::Json, Box::new(buf.clone()));
    let cfg = ServeConfig {
        trace_sample: 1, // export every request's span tree
        ..ServeConfig::default()
    };
    let trace_id = 777u64;
    let report = thread::scope(|s| {
        let server = s.spawn(|| {
            run_with_listener(&model, &listener, &cfg, &cancel, &tel, None).expect("serve")
        });
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .expect("read timeout");
        stream
            .write_all(
                format!("{{\"password\":\"hello123\",\"id\":1,\"trace_id\":{trace_id}}}\n")
                    .as_bytes(),
            )
            .expect("send request");
        let mut reader = BufReader::new(stream);
        let got = read_responses(&mut reader, 1);
        let response = &got[&Some(1)];
        assert!(is_true(response.get("ok")), "{response:?}");
        // The client-supplied trace id is echoed on the response line.
        assert_eq!(
            response.get("trace_id").and_then(JsonValue::as_f64),
            Some(trace_id as f64),
            "{response:?}"
        );
        cancel.cancel();
        server.join().expect("server thread")
    });
    assert!(report.reconciles(), "{report:?}");

    // Every exported span of the request's tree carries the same trace id,
    // children reference the root span, and the whole pipeline is covered.
    let log = buf.contents();
    let mut root = None;
    let mut children: Vec<(String, u64)> = Vec::new();
    for line in log.lines() {
        let rec = parse_json(line).expect("JSONL record");
        if rec.get("kind").and_then(JsonValue::as_str) != Some("span") {
            continue;
        }
        let fields = rec.get("fields").expect("span fields");
        if fields.get("trace_id").and_then(JsonValue::as_f64) != Some(trace_id as f64) {
            continue;
        }
        let name = rec.get("name").and_then(JsonValue::as_str).expect("name");
        let span_id = fields
            .get("span_id")
            .and_then(JsonValue::as_f64)
            .expect("span_id") as u64;
        let parent = fields
            .get("parent_span_id")
            .and_then(JsonValue::as_f64)
            .expect("parent_span_id") as u64;
        if name == "serve.request" {
            assert_eq!(parent, 0, "root span has no parent");
            root = Some(span_id);
        } else {
            children.push((name.to_string(), parent));
        }
    }
    let root = root.expect("exported trace has a serve.request root span");
    let names: Vec<&str> = children.iter().map(|(n, _)| n.as_str()).collect();
    for stage in [
        "serve.admission",
        "serve.queue_wait",
        "serve.batch_assembly",
        "serve.forward",
        "serve.response_write",
    ] {
        assert!(names.contains(&stage), "missing {stage} in {names:?}");
    }
    for (name, parent) in &children {
        assert_eq!(*parent, root, "{name} must parent on the root span");
    }
}

#[test]
fn requests_in_flight_at_shutdown_are_drained_not_dropped() {
    // Cancel immediately after writing: the reader may or may not admit
    // each request before it observes the cancellation, but whatever was
    // admitted must be answered and reconcile — nothing may be lost.
    let report = with_server(ServeConfig::default(), |addr| {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .expect("read timeout");
        let mut batch = String::new();
        for i in 0..16 {
            batch.push_str(&format!(
                "{{\"password\":\"hello12{}\",\"id\":{i}}}\n",
                i % 10
            ));
        }
        stream.write_all(batch.as_bytes()).expect("send requests");
        // Give the reader a moment to admit, then return so the harness
        // cancels while responses may still be in flight.
        thread::sleep(Duration::from_millis(100));
    });
    assert!(report.reconciles(), "{report:?}");
    assert_eq!(report.lost, 0);
    assert_eq!(report.admitted, 16, "all requests were admitted pre-drain");
    assert_eq!(report.failed, 0);
    // Every admitted request was answered: scored, or shed as
    // Disconnected once the client's socket closed. Neither path loses a
    // request silently.
    assert_eq!(report.completed + report.shed, 16);
}
