//! Training checkpoints: model weights, optimizer state, and loop progress
//! in one atomically-written, CRC-protected binary file.
//!
//! A checkpoint captures everything `run_training` needs to continue as if
//! it had never stopped: the serialized transformer (the checksummed PAGNN
//! format), the AdamW step counter and per-parameter moment estimates, and
//! the position inside the epoch/batch loop including partial epoch-loss
//! accumulators. Restoring is bit-exact, so a resumed run reproduces the
//! uninterrupted run's weights and loss history step for step.

use std::io::Read;
use std::path::Path;

use pagpass_nn::{atomic_write, crc32, AdamW, Gpt};

use crate::CoreError;

/// File magic (`PAGCKPT` + format version 1).
const MAGIC: &[u8; 8] = b"PAGCKPT\x01";

/// Position and history of a training loop at checkpoint time.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TrainProgress {
    /// Optimization steps completed.
    pub step: u64,
    /// Epoch currently in progress (0-based).
    pub epoch: usize,
    /// Batches already consumed inside the current epoch.
    pub batch_in_epoch: usize,
    /// Non-padding target tokens consumed.
    pub tokens_seen: u64,
    /// Mean training loss of each *completed* epoch.
    pub epoch_losses: Vec<f32>,
    /// Validation loss of each completed epoch.
    pub val_losses: Vec<f32>,
    /// Steps skipped because loss or gradients were non-finite.
    pub skipped_steps: Vec<u64>,
    /// Times the run rolled weights back to a checkpoint.
    pub rollbacks: u64,
    /// Current learning-rate backoff factor (1.0 = no backoff).
    pub lr_scale: f32,
    /// Loss accumulated over the current partial epoch.
    pub epoch_loss_accum: f64,
    /// Batches accumulated over the current partial epoch.
    pub epoch_batches: usize,
}

/// A complete training snapshot: weights, optimizer, and [`TrainProgress`].
#[derive(Debug, Clone, PartialEq)]
pub struct TrainCheckpoint {
    /// Serialized transformer (PAGNN format, already checksummed).
    pub weights: Vec<u8>,
    /// AdamW step counter (drives bias correction).
    pub opt_steps: u64,
    /// Per-parameter `(m, v)` moment vectors in `visit_params` order.
    pub moments: Vec<(Vec<f32>, Vec<f32>)>,
    /// Loop position and history.
    pub progress: TrainProgress,
}

/// Sequential reader over the checkpoint byte stream.
struct Reader<'a> {
    data: &'a [u8],
}

/// Converts a slice into a fixed-width array without panicking; `take`
/// guarantees the width, so a mismatch is an internal bug, not bad input.
fn fixed<const N: usize>(bytes: &[u8]) -> Result<[u8; N], CoreError> {
    bytes
        .try_into()
        .map_err(|_| CoreError::Internal("checkpoint reader sliced a wrong-width field"))
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], CoreError> {
        if self.data.len() < n {
            return Err(CoreError::Checkpoint("truncated checkpoint".into()));
        }
        let (head, tail) = self.data.split_at(n);
        self.data = tail;
        Ok(head)
    }
    fn u32(&mut self) -> Result<u32, CoreError> {
        Ok(u32::from_le_bytes(fixed(self.take(4)?)?))
    }
    fn u64(&mut self) -> Result<u64, CoreError> {
        Ok(u64::from_le_bytes(fixed(self.take(8)?)?))
    }
    fn f32(&mut self) -> Result<f32, CoreError> {
        Ok(f32::from_le_bytes(fixed(self.take(4)?)?))
    }
    fn f64(&mut self) -> Result<f64, CoreError> {
        Ok(f64::from_le_bytes(fixed(self.take(8)?)?))
    }
    fn f32_vec(&mut self) -> Result<Vec<f32>, CoreError> {
        let n = self.u32()? as usize;
        (0..n).map(|_| self.f32()).collect()
    }
    fn u64_vec(&mut self) -> Result<Vec<u64>, CoreError> {
        let n = self.u32()? as usize;
        (0..n).map(|_| self.u64()).collect()
    }
}

fn put_f32_vec(out: &mut Vec<u8>, v: &[f32]) {
    out.extend_from_slice(&(v.len() as u32).to_le_bytes());
    for &x in v {
        out.extend_from_slice(&x.to_le_bytes());
    }
}

impl TrainCheckpoint {
    /// Snapshots the model, optimizer, and loop state.
    #[must_use]
    pub fn capture(gpt: &mut Gpt, opt: &AdamW, progress: TrainProgress) -> TrainCheckpoint {
        let weights = gpt.to_bytes().to_vec();
        let mut moments = Vec::new();
        gpt.visit_params(&mut |p| {
            let (m, v) = p.moments();
            moments.push((m.as_slice().to_vec(), v.as_slice().to_vec()));
        });
        TrainCheckpoint {
            weights,
            opt_steps: opt.steps(),
            moments,
            progress,
        }
    }

    /// Writes the snapshot back into `gpt` and `opt` and returns the saved
    /// loop position.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Load`] when the embedded weights are corrupt
    /// and [`CoreError::Checkpoint`] when the optimizer state does not
    /// match the model's parameter shapes.
    pub fn restore(&self, gpt: &mut Gpt, opt: &mut AdamW) -> Result<TrainProgress, CoreError> {
        *gpt = Gpt::from_bytes(bytes::Bytes::from(self.weights.clone()))?;
        opt.set_steps(self.opt_steps);
        let mut idx = 0usize;
        let mut failure = false;
        gpt.visit_params(&mut |p| {
            let Some((m, v)) = self.moments.get(idx) else {
                failure = true;
                return;
            };
            idx += 1;
            if m.len() != p.len() || v.len() != p.len() {
                failure = true;
                return;
            }
            let (pm, pv) = p.moments_mut();
            pm.as_mut_slice().copy_from_slice(m);
            pv.as_mut_slice().copy_from_slice(v);
        });
        if failure || idx != self.moments.len() {
            return Err(CoreError::Checkpoint(
                "optimizer state does not match the model's parameters".into(),
            ));
        }
        Ok(self.progress.clone())
    }

    /// Serializes the checkpoint (binary, trailing CRC32).
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.weights.len() * 3 + 256);
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&(self.weights.len() as u64).to_le_bytes());
        out.extend_from_slice(&self.weights);
        out.extend_from_slice(&self.opt_steps.to_le_bytes());
        out.extend_from_slice(&(self.moments.len() as u32).to_le_bytes());
        for (m, v) in &self.moments {
            put_f32_vec(&mut out, m);
            put_f32_vec(&mut out, v);
        }
        let p = &self.progress;
        out.extend_from_slice(&p.step.to_le_bytes());
        out.extend_from_slice(&(p.epoch as u64).to_le_bytes());
        out.extend_from_slice(&(p.batch_in_epoch as u64).to_le_bytes());
        out.extend_from_slice(&p.tokens_seen.to_le_bytes());
        out.extend_from_slice(&p.rollbacks.to_le_bytes());
        out.extend_from_slice(&p.lr_scale.to_le_bytes());
        out.extend_from_slice(&p.epoch_loss_accum.to_le_bytes());
        out.extend_from_slice(&(p.epoch_batches as u64).to_le_bytes());
        put_f32_vec(&mut out, &p.epoch_losses);
        put_f32_vec(&mut out, &p.val_losses);
        out.extend_from_slice(&(p.skipped_steps.len() as u32).to_le_bytes());
        for &s in &p.skipped_steps {
            out.extend_from_slice(&s.to_le_bytes());
        }
        let crc = crc32(&out);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }

    /// Parses bytes written by [`to_bytes`](Self::to_bytes), verifying the
    /// trailing CRC first.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Checkpoint`] for malformed or corrupt data.
    pub fn from_bytes(data: &[u8]) -> Result<TrainCheckpoint, CoreError> {
        if data.len() < MAGIC.len() + 4 || &data[..MAGIC.len()] != MAGIC {
            return Err(CoreError::Checkpoint("not a PAGCKPT file".into()));
        }
        let (body, crc_bytes) = data.split_at(data.len() - 4);
        let stored = u32::from_le_bytes(fixed(crc_bytes)?);
        let computed = crc32(body);
        if stored != computed {
            return Err(CoreError::Checkpoint(format!(
                "checksum mismatch (stored {stored:08x}, computed {computed:08x})"
            )));
        }
        let mut r = Reader {
            data: &body[MAGIC.len()..],
        };
        let weights_len = r.u64()? as usize;
        let weights = r.take(weights_len)?.to_vec();
        let opt_steps = r.u64()?;
        let n_moments = r.u32()? as usize;
        let mut moments = Vec::with_capacity(n_moments);
        for _ in 0..n_moments {
            let m = r.f32_vec()?;
            let v = r.f32_vec()?;
            moments.push((m, v));
        }
        let progress = TrainProgress {
            step: r.u64()?,
            epoch: r.u64()? as usize,
            batch_in_epoch: r.u64()? as usize,
            tokens_seen: r.u64()?,
            rollbacks: r.u64()?,
            lr_scale: r.f32()?,
            epoch_loss_accum: r.f64()?,
            epoch_batches: r.u64()? as usize,
            epoch_losses: r.f32_vec()?,
            val_losses: r.f32_vec()?,
            skipped_steps: r.u64_vec()?,
        };
        if !r.data.is_empty() {
            return Err(CoreError::Checkpoint("trailing bytes".into()));
        }
        Ok(TrainCheckpoint {
            weights,
            opt_steps,
            moments,
            progress,
        })
    }

    /// Writes the checkpoint to `path` atomically.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn save(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        atomic_write(path, &self.to_bytes())
    }

    /// Loads and verifies a checkpoint written by [`save`](Self::save).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Io`] when the file cannot be read and
    /// [`CoreError::Checkpoint`] when it is malformed or corrupt.
    pub fn load(path: impl AsRef<Path>) -> Result<TrainCheckpoint, CoreError> {
        let mut data = Vec::new();
        std::fs::File::open(path)?.read_to_end(&mut data)?;
        TrainCheckpoint::from_bytes(&data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pagpass_nn::{GptConfig, Rng};

    fn tiny() -> Gpt {
        Gpt::new(GptConfig::tiny(11), &mut Rng::seed_from(2))
    }

    fn progress() -> TrainProgress {
        TrainProgress {
            step: 17,
            epoch: 2,
            batch_in_epoch: 3,
            tokens_seen: 512,
            epoch_losses: vec![3.5, 2.5],
            val_losses: vec![3.6],
            skipped_steps: vec![4, 9],
            rollbacks: 1,
            lr_scale: 0.25,
            epoch_loss_accum: 7.75,
            epoch_batches: 3,
        }
    }

    /// Trains a few steps so moments and weights are non-trivial.
    fn trained_pair() -> (Gpt, AdamW) {
        let mut gpt = tiny();
        let mut opt = AdamW::new(1e-3);
        let tokens = vec![1u32, 2, 3, 4, 5, 6, 7, 8];
        for _ in 0..3 {
            gpt.compute_grads(&tokens, 2, 4, None);
            opt.begin_step();
            gpt.visit_params(&mut |p| opt.update(p));
        }
        (gpt, opt)
    }

    #[test]
    fn byte_roundtrip_is_exact() {
        let (mut gpt, opt) = trained_pair();
        let ckpt = TrainCheckpoint::capture(&mut gpt, &opt, progress());
        let parsed = TrainCheckpoint::from_bytes(&ckpt.to_bytes()).unwrap();
        assert_eq!(parsed, ckpt);
    }

    #[test]
    fn restore_reproduces_training_exactly() {
        let (mut gpt, opt) = trained_pair();
        let ckpt = TrainCheckpoint::capture(&mut gpt, &opt, progress());

        // Continue the original for two more steps.
        let tokens = vec![1u32, 2, 3, 4, 5, 6, 7, 8];
        let step = |g: &mut Gpt, o: &mut AdamW| {
            g.compute_grads(&tokens, 2, 4, None);
            o.begin_step();
            g.visit_params(&mut |p| o.update(p));
        };
        let mut opt_a = opt.clone();
        step(&mut gpt, &mut opt_a);
        step(&mut gpt, &mut opt_a);

        // Restore into fresh objects and take the same two steps.
        let mut gpt_b = tiny();
        let mut opt_b = AdamW::new(1e-3);
        let restored = ckpt.restore(&mut gpt_b, &mut opt_b).unwrap();
        assert_eq!(restored, progress());
        assert_eq!(opt_b.steps(), opt.steps());
        step(&mut gpt_b, &mut opt_b);
        step(&mut gpt_b, &mut opt_b);

        assert_eq!(
            gpt.next_token_logits(&[1, 2, 3]),
            gpt_b.next_token_logits(&[1, 2, 3])
        );
    }

    #[test]
    fn corruption_is_detected() {
        let (mut gpt, opt) = trained_pair();
        let mut data = TrainCheckpoint::capture(&mut gpt, &opt, progress()).to_bytes();
        let idx = data.len() / 3;
        data[idx] ^= 0x40;
        assert!(matches!(
            TrainCheckpoint::from_bytes(&data),
            Err(CoreError::Checkpoint(msg)) if msg.contains("checksum")
        ));
    }

    #[test]
    fn truncation_is_detected() {
        let (mut gpt, opt) = trained_pair();
        let data = TrainCheckpoint::capture(&mut gpt, &opt, progress()).to_bytes();
        assert!(TrainCheckpoint::from_bytes(&data[..data.len() / 2]).is_err());
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("pagpass_ckpt_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("train.ckpt");
        let (mut gpt, opt) = trained_pair();
        let ckpt = TrainCheckpoint::capture(&mut gpt, &opt, progress());
        ckpt.save(&path).unwrap();
        assert_eq!(TrainCheckpoint::load(&path).unwrap(), ckpt);
        std::fs::remove_dir_all(dir).ok();
    }
}
