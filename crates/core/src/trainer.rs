use std::path::Path;
use std::time::Instant;

use pagpass_nn::{gemm_calls, pool, AdamW, Gpt, LrSchedule, Rng};
use pagpass_telemetry::{Counter, Field, Gauge, Histogram, Telemetry};
use pagpass_tokenizer::{TokenId, Vocab};
use serde::{Deserialize, Serialize};

use crate::checkpoint::{TrainCheckpoint, TrainProgress};
use crate::control::{CancelToken, FaultPlan};
use crate::CoreError;

/// Consecutive non-finite steps tolerated before rolling weights back to
/// the last checkpoint (when one is available).
const MAX_CONSECUTIVE_FAILURES: u32 = 3;

/// Smallest learning-rate backoff factor; prevents underflow to zero under
/// sustained instability.
const MIN_LR_SCALE: f32 = 1.0 / 1024.0;

/// Training hyper-parameters.
///
/// The paper trains with batch size 512 for 30 epochs, AdamW at 5e-5, on
/// four RTX 3080s. [`TrainConfig::default`] keeps the optimizer family and
/// schedule but scales batch count and size for single-core CPU runs;
/// [`TrainConfig::paper`] records the paper's numbers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Passes over the corpus.
    pub epochs: usize,
    /// Sequences per optimization step.
    pub batch_size: usize,
    /// Peak learning rate.
    pub lr: f32,
    /// Warmup steps before the peak (cosine decay after).
    pub warmup_steps: u64,
    /// Shuffling/initialization seed.
    pub seed: u64,
    /// Optional cap on batches per epoch (subsampling for quick runs).
    pub max_batches_per_epoch: Option<usize>,
    /// Optional global gradient-norm clip (standard transformer
    /// stabilization; `None` disables).
    pub grad_clip: Option<f32>,
    /// Print progress every this many steps (0 = silent).
    pub log_every: usize,
}

impl Default for TrainConfig {
    fn default() -> TrainConfig {
        TrainConfig {
            epochs: 8,
            batch_size: 32,
            lr: 3e-3,
            warmup_steps: 50,
            seed: 1337,
            max_batches_per_epoch: None,
            grad_clip: Some(1.0),
            log_every: 0,
        }
    }
}

impl TrainConfig {
    /// The paper's configuration (§IV-B1). Only practical with GPUs; kept
    /// for documentation and scaling experiments.
    #[must_use]
    pub fn paper() -> TrainConfig {
        TrainConfig {
            epochs: 30,
            batch_size: 512,
            lr: 5e-5,
            warmup_steps: 0,
            seed: 1337,
            max_batches_per_epoch: None,
            grad_clip: None,
            log_every: 100,
        }
    }

    /// A fast configuration for unit tests.
    #[must_use]
    pub fn quick() -> TrainConfig {
        TrainConfig {
            epochs: 3,
            batch_size: 16,
            lr: 3e-3,
            warmup_steps: 5,
            seed: 7,
            max_batches_per_epoch: Some(8),
            grad_clip: Some(1.0),
            log_every: 0,
        }
    }
}

/// Checkpoint cadence for a training run.
#[derive(Debug, Clone, Copy)]
pub struct CheckpointPolicy<'a> {
    /// Checkpoint file, written atomically (temp + rename).
    pub path: &'a Path,
    /// Save every this many optimization steps; `0` saves only on
    /// cancellation.
    pub every_steps: u64,
}

/// Runtime options for a training run: checkpointing, resumption,
/// cancellation, and fault injection.
#[derive(Debug, Default, Clone, Copy)]
pub struct TrainOptions<'a> {
    /// Periodic weight + optimizer checkpointing.
    pub checkpoint: Option<CheckpointPolicy<'a>>,
    /// Continue from the checkpoint file if it exists (requires
    /// `checkpoint`); a missing file starts fresh.
    pub resume: bool,
    /// Cooperative cancellation, honored at batch boundaries. A final
    /// checkpoint is saved before returning so the run can be resumed.
    pub cancel: Option<&'a CancelToken>,
    /// Deterministic fault injection (tests only).
    pub fault: Option<&'a FaultPlan>,
    /// Metrics + structured progress events. `None` counts into the shared
    /// [`Telemetry::disabled`] instance and falls back to plain `eprintln!`
    /// progress lines (governed by [`TrainConfig::log_every`]).
    pub telemetry: Option<&'a Telemetry>,
}

/// Loss history of a training run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainingReport {
    /// Mean training loss per epoch.
    pub epoch_losses: Vec<f32>,
    /// Validation loss per epoch (empty when no validation set given).
    pub val_losses: Vec<f32>,
    /// Total optimization steps (including batches consumed by skipped
    /// steps, and — when resuming — steps done before the checkpoint).
    pub steps: u64,
    /// Total non-padding target tokens consumed.
    pub tokens_seen: u64,
    /// Steps whose loss or gradients were non-finite; their updates were
    /// skipped and the learning rate backed off.
    pub skipped_steps: Vec<u64>,
    /// Times the run rolled weights back to the last checkpoint after
    /// repeated non-finite steps.
    pub rollbacks: u64,
    /// Checkpoint writes that failed; the run continues through these.
    pub checkpoint_errors: u64,
    /// Whether the run was cancelled before completing all epochs.
    pub interrupted: bool,
}

/// Metric handles for one training run, resolved once up front so the
/// batch loop never touches the registry's name map.
struct TrainMetrics {
    steps: Counter,
    tokens: Counter,
    skipped: Counter,
    rollbacks: Counter,
    checkpoint_writes: Counter,
    checkpoint_errors: Counter,
    loss: Gauge,
    lr: Gauge,
    grad_norm: Gauge,
    lr_scale: Gauge,
    epoch: Gauge,
    step_ms: Histogram,
    checkpoint_ms: Histogram,
    gemm_calls: Counter,
    pool_threads: Gauge,
}

impl TrainMetrics {
    fn new(tel: &Telemetry) -> TrainMetrics {
        TrainMetrics {
            steps: tel.counter("train.steps"),
            tokens: tel.counter("train.tokens"),
            skipped: tel.counter("train.skipped_steps"),
            rollbacks: tel.counter("train.rollbacks"),
            checkpoint_writes: tel.counter("train.checkpoint_writes"),
            checkpoint_errors: tel.counter("train.checkpoint_errors"),
            loss: tel.gauge("train.loss"),
            lr: tel.gauge("train.lr"),
            grad_norm: tel.gauge("train.grad_norm"),
            lr_scale: tel.gauge("train.lr_scale"),
            epoch: tel.gauge("train.epoch"),
            step_ms: tel.histogram_ms("train.step.ms"),
            checkpoint_ms: tel.histogram_ms("train.checkpoint.ms"),
            gemm_calls: tel.counter("nn.gemm_calls"),
            pool_threads: tel.gauge("nn.pool_threads"),
        }
    }
}

impl TrainingReport {
    fn empty() -> TrainingReport {
        TrainingReport {
            epoch_losses: Vec::new(),
            val_losses: Vec::new(),
            steps: 0,
            tokens_seen: 0,
            skipped_steps: Vec::new(),
            rollbacks: 0,
            checkpoint_errors: 0,
            interrupted: false,
        }
    }
}

/// Trains `gpt` on pre-encoded rules (no checkpointing or cancellation).
///
/// Rules are shuffled each epoch, grouped into batches, and padded to the
/// longest rule in the batch with `<PAD>` (which the loss ignores).
pub(crate) fn run_training(
    gpt: &mut Gpt,
    train_rules: &[Vec<TokenId>],
    val_rules: &[Vec<TokenId>],
    config: &TrainConfig,
) -> TrainingReport {
    run_training_with(
        gpt,
        train_rules,
        val_rules,
        config,
        &TrainOptions::default(),
    )
    // LINT-ALLOW: no-unwrap-in-lib with default options no checkpoint I/O
    // runs, so the only error source is unreachable; documented above.
    .expect("training without checkpoint I/O cannot fail")
}

/// [`run_training`] with runtime options: checkpoint/resume, cooperative
/// cancellation, and fault injection.
///
/// # Robustness
///
/// * A non-finite loss or gradient norm skips the optimizer step (the
///   gradients are discarded), records the step in
///   [`TrainingReport::skipped_steps`], and halves a learning-rate backoff
///   factor that recovers (doubling per healthy step) once training
///   stabilizes.
/// * After [`MAX_CONSECUTIVE_FAILURES`] consecutive skipped steps, weights
///   and optimizer state roll back to the last checkpoint (if one exists)
///   while the data position keeps advancing past the offending batches.
/// * Checkpoints capture weights, AdamW moments, and the exact loop
///   position; a resumed run reproduces the uninterrupted run bit for bit.
///
/// # Errors
///
/// Returns [`CoreError::Checkpoint`] / [`CoreError::Load`] when `resume`
/// is set and the checkpoint file exists but cannot be restored. Failed
/// checkpoint *writes* are counted, not fatal.
pub(crate) fn run_training_with(
    gpt: &mut Gpt,
    train_rules: &[Vec<TokenId>],
    val_rules: &[Vec<TokenId>],
    config: &TrainConfig,
    opts: &TrainOptions<'_>,
) -> Result<TrainingReport, CoreError> {
    let mut report = TrainingReport::empty();
    if train_rules.is_empty() {
        return Ok(report);
    }
    let tel: &Telemetry = match opts.telemetry {
        Some(tel) => tel,
        None => Telemetry::disabled(),
    };
    let metrics = TrainMetrics::new(tel);
    metrics.pool_threads.set(pool::global().threads() as f64);
    // The GEMM counter is process-global; report per-step deltas so the
    // run's metric covers exactly this run.
    let mut gemm_seen = gemm_calls();
    let run_timer = tel.timer("train.run");
    let ctx = gpt.config().ctx_len;
    let mut opt = AdamW::new(config.lr);
    let batches_per_epoch = {
        let full = train_rules.len().div_ceil(config.batch_size);
        config
            .max_batches_per_epoch
            .map_or(full, |cap| cap.min(full))
    };
    let total_steps = (batches_per_epoch * config.epochs) as u64;
    let schedule = LrSchedule::warmup_cosine(config.lr, config.warmup_steps, total_steps.max(1));

    let mut progress = TrainProgress {
        lr_scale: 1.0,
        ..TrainProgress::default()
    };
    if opts.resume {
        if let Some(policy) = &opts.checkpoint {
            if policy.path.exists() {
                let ckpt = TrainCheckpoint::load(policy.path)?;
                progress = ckpt.restore(gpt, &mut opt)?;
            }
        }
    }

    tel.event(
        "progress",
        "train.start",
        &[
            ("epochs", Field::U64(config.epochs as u64)),
            ("batch_size", Field::U64(config.batch_size as u64)),
            ("batches_per_epoch", Field::U64(batches_per_epoch as u64)),
            ("total_steps", Field::U64(total_steps)),
            ("resume_step", Field::U64(progress.step)),
        ],
    );

    let mut consecutive_failures = 0u32;
    let start_epoch = progress.epoch;
    'epochs: for epoch in start_epoch..config.epochs {
        // The shuffle is re-seeded per epoch (rather than one RNG threaded
        // through all epochs) so a resumed run can reproduce the batch
        // order of the epoch it restarts inside.
        let mut rng = Rng::seed_from(epoch_seed(config.seed, epoch));
        let mut order: Vec<usize> = (0..train_rules.len()).collect();
        rng.shuffle(&mut order);
        let start_batch = if epoch == start_epoch {
            progress.batch_in_epoch
        } else {
            0
        };

        for (batch_idx, chunk) in order
            .chunks(config.batch_size)
            .take(batches_per_epoch)
            .enumerate()
            .skip(start_batch)
        {
            let (tokens, b, t, targets) = pad_batch(train_rules, chunk, ctx);
            let step = progress.step;
            // DET: telemetry timing only; never feeds the training math.
            let step_started = Instant::now();
            opt.lr = schedule.lr_at(step) * progress.lr_scale;
            let mut loss = gpt.compute_grads(&tokens, b, t, Some(Vocab::PAD));
            if let Some(injected) = opts.fault.and_then(|f| f.loss_override(step)) {
                loss = injected;
            }
            let grad_norm = if !loss.is_finite() {
                f32::NAN
            } else if let Some(max_norm) = config.grad_clip {
                gpt.clip_grad_norm(max_norm)
            } else {
                gpt.grad_norm()
            };
            let grads_finite = grad_norm.is_finite();

            if loss.is_finite() && grads_finite {
                opt.begin_step();
                gpt.visit_params(&mut |p| opt.update(p));
                consecutive_failures = 0;
                progress.lr_scale = (progress.lr_scale * 2.0).min(1.0);
                progress.epoch_loss_accum += f64::from(loss);
                progress.epoch_batches += 1;
                progress.tokens_seen += targets;
                metrics.loss.set(f64::from(loss));
                metrics.grad_norm.set(f64::from(grad_norm));
                metrics.tokens.add(targets);
                if config.log_every > 0 && (step + 1).is_multiple_of(config.log_every as u64) {
                    if opts.telemetry.is_some() {
                        tel.event(
                            "progress",
                            "train.step",
                            &[
                                ("step", Field::U64(step + 1)),
                                ("lr", Field::F64(f64::from(opt.lr))),
                                ("loss", Field::F64(f64::from(loss))),
                                ("grad_norm", Field::F64(f64::from(grad_norm))),
                                ("tokens_seen", Field::U64(progress.tokens_seen)),
                            ],
                        );
                    } else {
                        // LINT-ALLOW: no-stdout-in-lib legacy stderr progress
                        // line, kept for runs with telemetry disabled.
                        eprintln!("step {:>6}  lr {:.2e}  loss {loss:.4}", step + 1, opt.lr);
                    }
                }
            } else {
                // Divergence containment: discard the poisoned gradients,
                // back the learning rate off, and keep going — the batch
                // is consumed either way so the loop always terminates.
                gpt.visit_params(&mut pagpass_nn::Param::zero_grad);
                progress.skipped_steps.push(step);
                consecutive_failures += 1;
                progress.lr_scale = (progress.lr_scale * 0.5).max(MIN_LR_SCALE);
                metrics.skipped.inc();
                tel.event(
                    "warn",
                    "train.step_skipped",
                    &[
                        ("step", Field::U64(step)),
                        ("loss", Field::F64(f64::from(loss))),
                        ("lr_scale", Field::F64(f64::from(progress.lr_scale))),
                    ],
                );
                if consecutive_failures >= MAX_CONSECUTIVE_FAILURES {
                    if let Some(policy) = &opts.checkpoint {
                        if rollback(gpt, &mut opt, policy.path, progress.lr_scale) {
                            progress.rollbacks += 1;
                            consecutive_failures = 0;
                            metrics.rollbacks.inc();
                            tel.event("warn", "train.rollback", &[("step", Field::U64(step))]);
                        }
                    }
                }
            }

            progress.step += 1;
            progress.batch_in_epoch = batch_idx + 1;
            metrics.steps.inc();
            metrics.lr.set(f64::from(opt.lr));
            metrics.lr_scale.set(f64::from(progress.lr_scale));
            metrics
                .step_ms
                .record(step_started.elapsed().as_secs_f64() * 1e3);
            let gemm_now = gemm_calls();
            metrics.gemm_calls.add(gemm_now.saturating_sub(gemm_seen));
            gemm_seen = gemm_now;

            if let Some(policy) = &opts.checkpoint {
                if policy.every_steps > 0 && progress.step.is_multiple_of(policy.every_steps) {
                    save_checkpoint(
                        gpt,
                        &opt,
                        &progress,
                        policy,
                        opts.fault,
                        &mut report,
                        &metrics,
                    );
                }
            }
            if opts.cancel.is_some_and(CancelToken::is_cancelled) {
                if let Some(policy) = &opts.checkpoint {
                    save_checkpoint(
                        gpt,
                        &opt,
                        &progress,
                        policy,
                        opts.fault,
                        &mut report,
                        &metrics,
                    );
                }
                report.interrupted = true;
                break 'epochs;
            }
        }

        let mean = (progress.epoch_loss_accum / progress.epoch_batches.max(1) as f64) as f32;
        progress.epoch_losses.push(mean);
        let mut epoch_fields = vec![
            ("epoch", Field::U64(epoch as u64 + 1)),
            ("mean_loss", Field::F64(f64::from(mean))),
        ];
        if !val_rules.is_empty() {
            let val = validation_loss(gpt, val_rules, config.batch_size);
            progress.val_losses.push(val);
            epoch_fields.push(("val_loss", Field::F64(f64::from(val))));
        }
        metrics.epoch.set(epoch as f64 + 1.0);
        tel.event("progress", "train.epoch", &epoch_fields);
        progress.epoch = epoch + 1;
        progress.batch_in_epoch = 0;
        progress.epoch_loss_accum = 0.0;
        progress.epoch_batches = 0;
    }

    report.epoch_losses = progress.epoch_losses;
    report.val_losses = progress.val_losses;
    report.steps = progress.step;
    report.tokens_seen = progress.tokens_seen;
    report.skipped_steps = progress.skipped_steps;
    report.rollbacks = progress.rollbacks;
    drop(run_timer); // records train.run.ms before the final event
    tel.event(
        "progress",
        "train.done",
        &[
            ("steps", Field::U64(report.steps)),
            ("tokens_seen", Field::U64(report.tokens_seen)),
            (
                "skipped_steps",
                Field::U64(report.skipped_steps.len() as u64),
            ),
            ("rollbacks", Field::U64(report.rollbacks)),
            ("checkpoint_errors", Field::U64(report.checkpoint_errors)),
            ("interrupted", Field::Bool(report.interrupted)),
        ],
    );
    Ok(report)
}

/// Seed for the epoch's shuffle; the SplitMix64 finalizer keeps adjacent
/// epochs decorrelated.
fn epoch_seed(seed: u64, epoch: usize) -> u64 {
    let mut z = seed ^ (epoch as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z ^ (z >> 31)
}

/// Restores weights and optimizer from `path`, keeping `lr_scale`.
/// Returns whether the rollback succeeded.
fn rollback(gpt: &mut Gpt, opt: &mut AdamW, path: &Path, lr_scale: f32) -> bool {
    let Ok(ckpt) = TrainCheckpoint::load(path) else {
        return false;
    };
    let Ok(_saved) = ckpt.restore(gpt, opt) else {
        return false;
    };
    // The restored progress is deliberately discarded: only weights and
    // optimizer rewind; the data position keeps moving past the batches
    // that destabilized training. The caller keeps its backed-off
    // `lr_scale` so the retried region trains more gently.
    let _ = lr_scale;
    true
}

/// Saves a checkpoint, honoring injected write failures. Failures are
/// counted on the report, never fatal: a broken disk should degrade
/// recovery granularity, not kill a multi-hour run.
#[allow(clippy::too_many_arguments)]
fn save_checkpoint(
    gpt: &mut Gpt,
    opt: &AdamW,
    progress: &TrainProgress,
    policy: &CheckpointPolicy<'_>,
    fault: Option<&FaultPlan>,
    report: &mut TrainingReport,
    metrics: &TrainMetrics,
) {
    let injected = fault.is_some_and(FaultPlan::take_write_failure);
    // DET: telemetry timing only; checkpoint bytes stay deterministic.
    let started = Instant::now();
    let ckpt = TrainCheckpoint::capture(gpt, opt, progress.clone());
    if injected || ckpt.save(policy.path).is_err() {
        report.checkpoint_errors += 1;
        metrics.checkpoint_errors.inc();
    } else {
        metrics.checkpoint_writes.inc();
    }
    metrics
        .checkpoint_ms
        .record(started.elapsed().as_secs_f64() * 1e3);
}

/// Mean loss over a held-out set (no parameter updates).
pub(crate) fn validation_loss(gpt: &mut Gpt, rules: &[Vec<TokenId>], batch_size: usize) -> f32 {
    let ctx = gpt.config().ctx_len;
    let order: Vec<usize> = (0..rules.len()).collect();
    let mut total = 0.0f64;
    let mut batches = 0usize;
    for chunk in order.chunks(batch_size) {
        let (tokens, b, t, _) = pad_batch(rules, chunk, ctx);
        total += f64::from(gpt.eval_loss(&tokens, b, t, Some(Vocab::PAD)));
        batches += 1;
    }
    (total / batches.max(1) as f64) as f32
}

/// Pads the selected rules to a common length (the longest in the batch,
/// clamped to the context window). Returns `(tokens, b, t, target_count)`.
fn pad_batch(
    rules: &[Vec<TokenId>],
    chunk: &[usize],
    ctx: usize,
) -> (Vec<TokenId>, usize, usize, u64) {
    let t = chunk
        .iter()
        .map(|&i| rules[i].len())
        .max()
        .unwrap_or(1)
        .min(ctx);
    let b = chunk.len();
    let mut tokens = vec![Vocab::PAD; b * t];
    let mut targets = 0u64;
    for (row, &i) in chunk.iter().enumerate() {
        let rule = &rules[i];
        let len = rule.len().min(t);
        tokens[row * t..row * t + len].copy_from_slice(&rule[..len]);
        targets += len.saturating_sub(1) as u64;
    }
    (tokens, b, t, targets)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pagpass_nn::GptConfig;
    use pagpass_tokenizer::{Tokenizer, VOCAB_SIZE};

    fn tiny_gpt() -> Gpt {
        Gpt::new(
            GptConfig {
                vocab_size: VOCAB_SIZE,
                ctx_len: 32,
                dim: 16,
                n_layers: 1,
                n_heads: 2,
            },
            &mut Rng::seed_from(11),
        )
    }

    fn encode_all(pwds: &[&str]) -> Vec<Vec<TokenId>> {
        let tok = Tokenizer::new();
        pwds.iter()
            .map(|p| tok.encode_training(p).unwrap())
            .collect()
    }

    #[test]
    fn loss_decreases_on_a_small_corpus() {
        let rules = encode_all(&["abc123", "dog456", "cat789", "sun111", "ice222", "fox333"]);
        let mut gpt = tiny_gpt();
        let config = TrainConfig {
            epochs: 6,
            batch_size: 6,
            lr: 3e-3,
            ..TrainConfig::default()
        };
        let report = run_training(&mut gpt, &rules, &rules, &config);
        assert_eq!(report.epoch_losses.len(), 6);
        assert_eq!(report.val_losses.len(), 6);
        assert!(report.epoch_losses[5] < report.epoch_losses[0]);
        assert!(report.steps == 6);
        assert!(report.tokens_seen > 0);
        assert!(report.skipped_steps.is_empty());
        assert!(!report.interrupted);
    }

    #[test]
    fn empty_corpus_returns_empty_report() {
        let mut gpt = tiny_gpt();
        let report = run_training(&mut gpt, &[], &[], &TrainConfig::quick());
        assert!(report.epoch_losses.is_empty());
        assert_eq!(report.steps, 0);
    }

    #[test]
    fn pad_batch_shapes_and_target_count() {
        let rules = encode_all(&["ab1", "abcdef99"]);
        let (tokens, b, t, targets) = pad_batch(&rules, &[0, 1], 32);
        assert_eq!(b, 2);
        assert_eq!(t, rules[1].len());
        assert_eq!(tokens.len(), b * t);
        assert_eq!(targets, (rules[0].len() - 1 + rules[1].len() - 1) as u64);
        // Row 0 is padded after its rule.
        assert_eq!(
            tokens[rules[0].len()..t],
            vec![Vocab::PAD; t - rules[0].len()]
        );
    }

    #[test]
    fn max_batches_cap_subsamples() {
        let rules = encode_all(&["abc123"; 100]);
        let mut gpt = tiny_gpt();
        let config = TrainConfig {
            epochs: 2,
            batch_size: 10,
            max_batches_per_epoch: Some(3),
            ..TrainConfig::default()
        };
        let report = run_training(&mut gpt, &rules, &[], &config);
        assert_eq!(report.steps, 6);
    }

    #[test]
    fn configs_have_paper_values() {
        let paper = TrainConfig::paper();
        assert_eq!(paper.epochs, 30);
        assert_eq!(paper.batch_size, 512);
        assert!((paper.lr - 5e-5).abs() < 1e-9);
    }

    #[test]
    fn injected_nan_loss_is_skipped_and_training_recovers() {
        let rules = encode_all(&["abc123", "dog456", "cat789", "sun111", "ice222", "fox333"]);
        let mut gpt = tiny_gpt();
        let config = TrainConfig {
            epochs: 6,
            batch_size: 6,
            lr: 3e-3,
            ..TrainConfig::default()
        };
        let fault = FaultPlan::new().nan_loss_at_step(1).nan_loss_at_step(3);
        let opts = TrainOptions {
            fault: Some(&fault),
            ..TrainOptions::default()
        };
        let report = run_training_with(&mut gpt, &rules, &rules, &config, &opts).unwrap();
        assert_eq!(report.skipped_steps, vec![1, 3]);
        assert_eq!(report.steps, 6, "skipped steps still consume their batch");
        assert!(report.epoch_losses.iter().all(|l| l.is_finite()));
        assert!(
            report.epoch_losses[5] < report.epoch_losses[0],
            "training recovers"
        );
    }

    #[test]
    fn cancellation_stops_at_a_batch_boundary() {
        let rules = encode_all(&["abc123"; 64]);
        let mut gpt = tiny_gpt();
        let config = TrainConfig {
            epochs: 4,
            batch_size: 8,
            ..TrainConfig::default()
        };
        let cancel = CancelToken::new();
        cancel.cancel(); // pre-cancelled: exactly one batch runs
        let opts = TrainOptions {
            cancel: Some(&cancel),
            ..TrainOptions::default()
        };
        let report = run_training_with(&mut gpt, &rules, &[], &config, &opts).unwrap();
        assert!(report.interrupted);
        assert_eq!(report.steps, 1);
    }

    #[test]
    fn checkpoint_resume_reproduces_uninterrupted_run() {
        let dir = std::env::temp_dir().join("pagpass_trainer_resume_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("train.ckpt");
        std::fs::remove_file(&path).ok();
        let rules = encode_all(&["abc123", "dog456", "cat789", "sun111", "ice222", "fox333"]);
        let config = TrainConfig {
            epochs: 4,
            batch_size: 2,
            lr: 3e-3,
            ..TrainConfig::default()
        };

        // Reference: one uninterrupted run.
        let mut gpt_a = tiny_gpt();
        let full = run_training(&mut gpt_a, &rules, &rules, &config);

        // Interrupted run: a first leg stopping after 2 of the 4 epochs
        // (checkpointing every step), then a resume to the full run.
        let mut gpt_b = tiny_gpt();
        let policy = CheckpointPolicy {
            path: &path,
            every_steps: 1,
        };
        let leg1 = TrainConfig {
            epochs: 2,
            ..config.clone()
        };
        let opts1 = TrainOptions {
            checkpoint: Some(policy),
            ..TrainOptions::default()
        };
        run_training_with(&mut gpt_b, &rules, &rules, &leg1, &opts1).unwrap();

        let mut gpt_c = tiny_gpt();
        let opts2 = TrainOptions {
            checkpoint: Some(policy),
            resume: true,
            ..TrainOptions::default()
        };
        let resumed = run_training_with(&mut gpt_c, &rules, &rules, &config, &opts2).unwrap();

        assert_eq!(resumed.steps, full.steps);
        assert_eq!(resumed.epoch_losses, full.epoch_losses);
        assert_eq!(resumed.val_losses, full.val_losses);
        assert_eq!(resumed.tokens_seen, full.tokens_seen);
        assert_eq!(
            gpt_a.next_token_logits(&[1, 2, 3]),
            gpt_c.next_token_logits(&[1, 2, 3]),
            "resumed weights must be bit-identical to the uninterrupted run"
        );
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn checkpoint_write_failures_are_counted_not_fatal() {
        let dir = std::env::temp_dir().join("pagpass_trainer_ckpt_fail_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("train.ckpt");
        std::fs::remove_file(&path).ok();
        let rules = encode_all(&["abc123", "dog456", "cat789", "sun111"]);
        let mut gpt = tiny_gpt();
        let config = TrainConfig {
            epochs: 2,
            batch_size: 2,
            ..TrainConfig::default()
        };
        let fault = FaultPlan::new().fail_write(0).fail_write(1);
        let opts = TrainOptions {
            checkpoint: Some(CheckpointPolicy {
                path: &path,
                every_steps: 1,
            }),
            fault: Some(&fault),
            ..TrainOptions::default()
        };
        let report = run_training_with(&mut gpt, &rules, &rules, &config, &opts).unwrap();
        assert_eq!(report.checkpoint_errors, 2);
        assert!(!report.interrupted);
        assert!(path.exists(), "later checkpoints still land");
        std::fs::remove_dir_all(dir).ok();
    }
}
