use pagpass_nn::{AdamW, Gpt, LrSchedule, Rng};
use pagpass_tokenizer::{TokenId, Vocab};
use serde::{Deserialize, Serialize};

/// Training hyper-parameters.
///
/// The paper trains with batch size 512 for 30 epochs, AdamW at 5e-5, on
/// four RTX 3080s. [`TrainConfig::default`] keeps the optimizer family and
/// schedule but scales batch count and size for single-core CPU runs;
/// [`TrainConfig::paper`] records the paper's numbers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Passes over the corpus.
    pub epochs: usize,
    /// Sequences per optimization step.
    pub batch_size: usize,
    /// Peak learning rate.
    pub lr: f32,
    /// Warmup steps before the peak (cosine decay after).
    pub warmup_steps: u64,
    /// Shuffling/initialization seed.
    pub seed: u64,
    /// Optional cap on batches per epoch (subsampling for quick runs).
    pub max_batches_per_epoch: Option<usize>,
    /// Optional global gradient-norm clip (standard transformer
    /// stabilization; `None` disables).
    pub grad_clip: Option<f32>,
    /// Print progress every this many steps (0 = silent).
    pub log_every: usize,
}

impl Default for TrainConfig {
    fn default() -> TrainConfig {
        TrainConfig {
            epochs: 8,
            batch_size: 32,
            lr: 3e-3,
            warmup_steps: 50,
            seed: 1337,
            max_batches_per_epoch: None,
            grad_clip: Some(1.0),
            log_every: 0,
        }
    }
}

impl TrainConfig {
    /// The paper's configuration (§IV-B1). Only practical with GPUs; kept
    /// for documentation and scaling experiments.
    #[must_use]
    pub fn paper() -> TrainConfig {
        TrainConfig {
            epochs: 30,
            batch_size: 512,
            lr: 5e-5,
            warmup_steps: 0,
            seed: 1337,
            max_batches_per_epoch: None,
            grad_clip: None,
            log_every: 100,
        }
    }

    /// A fast configuration for unit tests.
    #[must_use]
    pub fn quick() -> TrainConfig {
        TrainConfig {
            epochs: 3,
            batch_size: 16,
            lr: 3e-3,
            warmup_steps: 5,
            seed: 7,
            max_batches_per_epoch: Some(8),
            grad_clip: Some(1.0),
            log_every: 0,
        }
    }
}

/// Loss history of a training run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainingReport {
    /// Mean training loss per epoch.
    pub epoch_losses: Vec<f32>,
    /// Validation loss per epoch (empty when no validation set given).
    pub val_losses: Vec<f32>,
    /// Total optimization steps.
    pub steps: u64,
    /// Total non-padding target tokens consumed.
    pub tokens_seen: u64,
}

/// Trains `gpt` on pre-encoded rules.
///
/// Rules are shuffled each epoch, grouped into batches, and padded to the
/// longest rule in the batch with `<PAD>` (which the loss ignores).
pub(crate) fn run_training(
    gpt: &mut Gpt,
    train_rules: &[Vec<TokenId>],
    val_rules: &[Vec<TokenId>],
    config: &TrainConfig,
) -> TrainingReport {
    let mut report =
        TrainingReport { epoch_losses: Vec::new(), val_losses: Vec::new(), steps: 0, tokens_seen: 0 };
    if train_rules.is_empty() {
        return report;
    }
    let ctx = gpt.config().ctx_len;
    let mut rng = Rng::seed_from(config.seed);
    let mut opt = AdamW::new(config.lr);
    let batches_per_epoch = {
        let full = train_rules.len().div_ceil(config.batch_size);
        config.max_batches_per_epoch.map_or(full, |cap| cap.min(full))
    };
    let total_steps = (batches_per_epoch * config.epochs) as u64;
    let schedule = LrSchedule::warmup_cosine(config.lr, config.warmup_steps, total_steps.max(1));

    let mut order: Vec<usize> = (0..train_rules.len()).collect();
    for _ in 0..config.epochs {
        rng.shuffle(&mut order);
        let mut epoch_loss = 0.0f64;
        let mut epoch_batches = 0usize;
        for chunk in order.chunks(config.batch_size).take(batches_per_epoch) {
            let (tokens, b, t, targets) = pad_batch(train_rules, chunk, ctx);
            opt.lr = schedule.lr_at(report.steps);
            let loss = gpt.compute_grads(&tokens, b, t, Some(Vocab::PAD));
            if let Some(max_norm) = config.grad_clip {
                let _ = gpt.clip_grad_norm(max_norm);
            }
            opt.begin_step();
            gpt.visit_params(&mut |p| opt.update(p));
            report.steps += 1;
            report.tokens_seen += targets;
            epoch_loss += f64::from(loss);
            epoch_batches += 1;
            if config.log_every > 0 && report.steps.is_multiple_of(config.log_every as u64) {
                eprintln!("step {:>6}  lr {:.2e}  loss {loss:.4}", report.steps, opt.lr);
            }
        }
        report.epoch_losses.push((epoch_loss / epoch_batches.max(1) as f64) as f32);
        if !val_rules.is_empty() {
            report.val_losses.push(validation_loss(gpt, val_rules, config.batch_size));
        }
    }
    report
}

/// Mean loss over a held-out set (no parameter updates).
pub(crate) fn validation_loss(gpt: &mut Gpt, rules: &[Vec<TokenId>], batch_size: usize) -> f32 {
    let ctx = gpt.config().ctx_len;
    let order: Vec<usize> = (0..rules.len()).collect();
    let mut total = 0.0f64;
    let mut batches = 0usize;
    for chunk in order.chunks(batch_size) {
        let (tokens, b, t, _) = pad_batch(rules, chunk, ctx);
        total += f64::from(gpt.eval_loss(&tokens, b, t, Some(Vocab::PAD)));
        batches += 1;
    }
    (total / batches.max(1) as f64) as f32
}

/// Pads the selected rules to a common length (the longest in the batch,
/// clamped to the context window). Returns `(tokens, b, t, target_count)`.
fn pad_batch(
    rules: &[Vec<TokenId>],
    chunk: &[usize],
    ctx: usize,
) -> (Vec<TokenId>, usize, usize, u64) {
    let t = chunk.iter().map(|&i| rules[i].len()).max().unwrap_or(1).min(ctx);
    let b = chunk.len();
    let mut tokens = vec![Vocab::PAD; b * t];
    let mut targets = 0u64;
    for (row, &i) in chunk.iter().enumerate() {
        let rule = &rules[i];
        let len = rule.len().min(t);
        tokens[row * t..row * t + len].copy_from_slice(&rule[..len]);
        targets += len.saturating_sub(1) as u64;
    }
    (tokens, b, t, targets)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pagpass_nn::GptConfig;
    use pagpass_tokenizer::{Tokenizer, VOCAB_SIZE};

    fn tiny_gpt() -> Gpt {
        Gpt::new(
            GptConfig { vocab_size: VOCAB_SIZE, ctx_len: 32, dim: 16, n_layers: 1, n_heads: 2 },
            &mut Rng::seed_from(11),
        )
    }

    fn encode_all(pwds: &[&str]) -> Vec<Vec<TokenId>> {
        let tok = Tokenizer::new();
        pwds.iter().map(|p| tok.encode_training(p).unwrap()).collect()
    }

    #[test]
    fn loss_decreases_on_a_small_corpus() {
        let rules = encode_all(&["abc123", "dog456", "cat789", "sun111", "ice222", "fox333"]);
        let mut gpt = tiny_gpt();
        let config = TrainConfig { epochs: 6, batch_size: 6, lr: 3e-3, ..TrainConfig::default() };
        let report = run_training(&mut gpt, &rules, &rules, &config);
        assert_eq!(report.epoch_losses.len(), 6);
        assert_eq!(report.val_losses.len(), 6);
        assert!(report.epoch_losses[5] < report.epoch_losses[0]);
        assert!(report.steps == 6);
        assert!(report.tokens_seen > 0);
    }

    #[test]
    fn empty_corpus_returns_empty_report() {
        let mut gpt = tiny_gpt();
        let report = run_training(&mut gpt, &[], &[], &TrainConfig::quick());
        assert!(report.epoch_losses.is_empty());
        assert_eq!(report.steps, 0);
    }

    #[test]
    fn pad_batch_shapes_and_target_count() {
        let rules = encode_all(&["ab1", "abcdef99"]);
        let (tokens, b, t, targets) = pad_batch(&rules, &[0, 1], 32);
        assert_eq!(b, 2);
        assert_eq!(t, rules[1].len());
        assert_eq!(tokens.len(), b * t);
        assert_eq!(targets, (rules[0].len() - 1 + rules[1].len() - 1) as u64);
        // Row 0 is padded after its rule.
        assert_eq!(tokens[rules[0].len()..t], vec![Vocab::PAD; t - rules[0].len()]);
    }

    #[test]
    fn max_batches_cap_subsamples() {
        let rules = encode_all(&["abc123"; 100]);
        let mut gpt = tiny_gpt();
        let config = TrainConfig {
            epochs: 2,
            batch_size: 10,
            max_batches_per_epoch: Some(3),
            ..TrainConfig::default()
        };
        let report = run_training(&mut gpt, &rules, &[], &config);
        assert_eq!(report.steps, 6);
    }

    #[test]
    fn configs_have_paper_values() {
        let paper = TrainConfig::paper();
        assert_eq!(paper.epochs, 30);
        assert_eq!(paper.batch_size, 512);
        assert!((paper.lr - 5e-5).abs() < 1e-9);
    }
}
