//! Pluggable generation scheduling.
//!
//! D&C-GEN (paper Algorithm 1), SOPG best-first ordered enumeration
//! (arXiv 2403.09954), and plain pattern-conditioned sampling are three
//! answers to the same four questions: *what to expand next*, *how to
//! split the guess budget*, *when a node becomes a leaf*, and *how
//! guesses are emitted*. The [`Scheduler`] trait isolates exactly those
//! decisions; everything else — the supervised worker pool, panic
//! isolation and retries, `InferenceSession` prefix reuse, journaling,
//! cancellation, and telemetry — lives in [`pool`] and is shared by
//! every implementation.
//!
//! The pool holds one mutex around all shared state (including the
//! scheduler itself), so scheduler implementations are plain sequential
//! data structures: every trait method is called under that lock.

pub(crate) mod pool;

mod dcgen;
mod sample;
mod sopg;

use std::collections::VecDeque;

use pagpass_patterns::Pattern;
use serde::{Deserialize, Serialize};

use crate::dcgen::DcGenConfig;
use crate::journal::{DcGenJournal, JournalTask};

pub(crate) use self::dcgen::DcgenScheduler;
pub(crate) use self::sample::SampleScheduler;
pub(crate) use self::sopg::SopgScheduler;

/// Which guess-ordering strategy drives the worker pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
#[serde(rename_all = "lowercase")]
pub enum SchedulerKind {
    /// Divide-and-conquer budget splitting (paper Algorithm 1): quotas
    /// divide along the model's next-character distribution until they
    /// fall under the threshold, then leaves sample their quota.
    #[default]
    Dcgen,
    /// Best-first ordered enumeration in the spirit of SOPG
    /// (arXiv 2403.09954): a memory-capped max-frontier over partial
    /// sequences ordered by log-probability, emitting complete guesses
    /// in exact descending-probability order with zero repeats.
    Sopg,
    /// Plain pattern-conditioned sampling: the per-pattern budget is
    /// sampled directly in threshold-sized batches, with no model-guided
    /// division. The repeat-rate baseline the paper compares against.
    Sample,
}

impl SchedulerKind {
    /// Every scheduler, in CLI/documentation order.
    pub const ALL: [SchedulerKind; 3] = [
        SchedulerKind::Dcgen,
        SchedulerKind::Sopg,
        SchedulerKind::Sample,
    ];

    /// Stable lower-case name (CLI value, journal field, report key).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            SchedulerKind::Dcgen => "dcgen",
            SchedulerKind::Sopg => "sopg",
            SchedulerKind::Sample => "sample",
        }
    }
}

impl std::fmt::Display for SchedulerKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for SchedulerKind {
    type Err = String;

    fn from_str(s: &str) -> Result<SchedulerKind, String> {
        match s {
            "dcgen" => Ok(SchedulerKind::Dcgen),
            "sopg" => Ok(SchedulerKind::Sopg),
            "sample" => Ok(SchedulerKind::Sample),
            other => Err(format!(
                "unknown scheduler `{other}` (expected dcgen, sopg, or sample)"
            )),
        }
    }
}

/// One pending subtask: a pattern index, a password prefix, a
/// scheduler-defined priority, and its remaining retry budget. The id
/// doubles as the task's RNG key, which is what makes resumed runs
/// byte-identical: a task samples the same passwords no matter which
/// worker picks it up or when.
///
/// `quota` is scheduler-defined: D&C-GEN and plain sampling carry a guess
/// quota; SOPG carries the prefix log-probability. Either way it is an
/// `f64` whose bit pattern journals losslessly.
#[derive(Debug, Clone)]
pub(crate) struct Task {
    pub id: u64,
    pub pattern_idx: usize,
    pub prefix: String,
    pub quota: f64,
    pub retries_left: u32,
}

/// Everything a scheduler may read (and, for the budget reservation,
/// write) while deciding its next action. Borrowed from the pool's
/// locked state, so reservations and in-flight visibility are atomic
/// with the decision itself.
pub(crate) struct AcquireCtx<'a> {
    /// Pattern table; task `pattern_idx` fields index into this.
    pub patterns: &'a [Pattern],
    /// Division threshold `T` as a float (leaf cutoff / batch size).
    pub threshold: f64,
    /// Global guess budget `N`.
    pub total: u64,
    /// Budget reserved so far; schedulers bump this when they commit to
    /// emitting (directly or via a leaf), never past `total`.
    pub reserved: &'a mut u64,
    /// Tasks currently executing on other workers.
    pub in_flight: &'a [Task],
}

/// A scheduler's answer to "what should this worker do now?".
pub(crate) enum Acquire {
    /// Execute `task` outside the lock: sample a leaf of `leaf_n`
    /// passwords when `Some`, expand the next-character distribution
    /// when `None`.
    Run { task: Task, leaf_n: Option<usize> },
    /// Emit finished guesses directly from scheduler state (SOPG pops
    /// complete sequences off its frontier). `log_probs` parallels
    /// `passwords`; the reservation was already taken.
    Emit {
        passwords: Vec<String>,
        log_probs: Vec<f64>,
    },
    /// Nothing to do yet, but in-flight work may publish more; park on
    /// the condvar.
    Park,
    /// The run is finished (tree exhausted or budget reached); stop the
    /// pool.
    Done,
}

/// The scheduling seam of the generation pool. Implementations own the
/// pending-work structure (queue, frontier, …) and all ordering/budget
/// policy; the pool owns execution, fault tolerance, and I/O.
///
/// Every method is called with the pool lock held, so implementations
/// need no internal synchronization — but must therefore never block.
pub(crate) trait Scheduler: Send {
    /// Which strategy this is (journaled; resume refuses a mismatch).
    fn kind(&self) -> SchedulerKind;

    /// Decides the next action for an idle worker.
    fn acquire(&mut self, ctx: AcquireCtx<'_>) -> Acquire;

    /// Commits an expansion's next-character distribution `(char, prob)`
    /// back into the pending structure. Returns how many children were
    /// pruned (quota under one password, zero probability, eviction-free
    /// policy deletions — *not* frontier-cap evictions).
    fn commit_split(&mut self, parent: &Task, children: &[(char, f64)]) -> usize;

    /// Returns a task to the pending structure for retry. The pool has
    /// already decremented `retries_left`; the id is preserved so the
    /// retry replays the same RNG stream.
    fn requeue(&mut self, task: Task);

    /// Number of pending (not in-flight) work items, for telemetry.
    fn pending_len(&self) -> usize;

    /// Snapshot of pending work for the journal. In-flight tasks are
    /// appended by the pool; together they are exactly the work a resume
    /// must redo.
    fn pending_tasks(&self) -> Vec<JournalTask>;

    /// Next unassigned task id (journaled so resumed ids never collide).
    fn next_id(&self) -> u64;

    /// Frontier-cap evictions so far (SOPG only; zero elsewhere).
    fn evictions(&self) -> u64 {
        0
    }

    /// Whether stopping now — with `reserved` of `total` guesses taken —
    /// leaves work behind that a resume should redo.
    fn interrupted(&self, reserved: u64, total: u64) -> bool;
}

/// A freshly seeded scheduler plus the initial-allocation statistics the
/// report carries.
pub(crate) struct Seeded {
    pub scheduler: Box<dyn Scheduler>,
    pub patterns_used: usize,
    pub deleted: usize,
}

/// Builds and seeds the scheduler selected by `config` from the ranked
/// pattern priors. `priors[i]` is pattern `i`'s weight (already 1.0 per
/// pattern under uniform allocation) and `mass` their sum.
pub(crate) fn seed(
    config: &DcGenConfig,
    patterns: &[Pattern],
    priors: &[f64],
    mass: f64,
) -> Seeded {
    match config.scheduler {
        SchedulerKind::Dcgen => {
            let alloc = allocate_quotas(config, patterns, priors, mass);
            Seeded {
                scheduler: Box::new(DcgenScheduler::new(
                    alloc.queue,
                    alloc.next_id,
                    config.max_task_retries,
                )),
                patterns_used: alloc.patterns_used,
                deleted: alloc.deleted,
            }
        }
        SchedulerKind::Sample => {
            let alloc = allocate_quotas(config, patterns, priors, mass);
            Seeded {
                scheduler: Box::new(SampleScheduler::new(
                    alloc.queue,
                    alloc.next_id,
                    config.max_task_retries,
                )),
                patterns_used: alloc.patterns_used,
                deleted: alloc.deleted,
            }
        }
        SchedulerKind::Sopg => {
            let (scheduler, patterns_used) = SopgScheduler::seed(config, priors, mass);
            Seeded {
                scheduler: Box::new(scheduler),
                patterns_used,
                deleted: 0,
            }
        }
    }
}

/// Rebuilds the journaled scheduler's pending structure for a resume.
pub(crate) fn restore(config: &DcGenConfig, journal: &DcGenJournal) -> Box<dyn Scheduler> {
    match config.scheduler {
        SchedulerKind::Dcgen => Box::new(DcgenScheduler::new(
            restore_queue(journal),
            journal.next_id,
            journal.max_task_retries,
        )),
        SchedulerKind::Sample => Box::new(SampleScheduler::new(
            restore_queue(journal),
            journal.next_id,
            journal.max_task_retries,
        )),
        SchedulerKind::Sopg => Box::new(SopgScheduler::restore(config, journal)),
    }
}

fn restore_queue(journal: &DcGenJournal) -> VecDeque<Task> {
    journal
        .tasks
        .iter()
        .map(|t| Task {
            id: t.id,
            pattern_idx: t.pattern_idx,
            prefix: t.prefix.clone(),
            quota: t.quota,
            retries_left: journal.max_task_retries,
        })
        .collect()
}

/// Initial quota allocation shared by the quota-splitting schedulers
/// (paper Algorithm 1 line 3): `N_{P_i} = N · Pr(P_i)`, renormalized
/// over the kept set and capped at the pattern's search space
/// (optimization 2).
struct Allocation {
    queue: VecDeque<Task>,
    patterns_used: usize,
    deleted: usize,
    next_id: u64,
}

fn allocate_quotas(
    config: &DcGenConfig,
    patterns: &[Pattern],
    priors: &[f64],
    mass: f64,
) -> Allocation {
    let mut queue: VecDeque<Task> = VecDeque::new();
    let mut deleted = 0usize;
    let mut patterns_used = 0usize;
    let mut next_id = 0u64;
    for (idx, (pattern, &pr)) in patterns.iter().zip(priors).enumerate() {
        let mut quota = config.total as f64 * pr / mass;
        quota = quota.min(pattern.search_space());
        if quota < 1.0 {
            deleted += 1;
            continue;
        }
        patterns_used += 1;
        queue.push_back(Task {
            id: next_id,
            pattern_idx: idx,
            prefix: String::new(),
            quota,
            retries_left: config.max_task_retries,
        });
        next_id += 1;
    }
    Allocation {
        queue,
        patterns_used,
        deleted,
        next_id,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_name_roundtrips_through_fromstr() {
        for kind in SchedulerKind::ALL {
            assert_eq!(kind.name().parse::<SchedulerKind>(), Ok(kind));
            assert_eq!(kind.to_string(), kind.name());
        }
        assert!("best-first".parse::<SchedulerKind>().is_err());
    }

    #[test]
    fn default_kind_is_dcgen() {
        assert_eq!(SchedulerKind::default(), SchedulerKind::Dcgen);
    }

    #[test]
    fn allocation_caps_at_search_space_and_prunes_sub_one_quotas() {
        let patterns: Vec<Pattern> = vec!["N1".parse().unwrap(), "L4N2".parse().unwrap()];
        let priors = vec![0.5, 0.5];
        let config = DcGenConfig::new(100_000);
        let alloc = allocate_quotas(&config, &patterns, &priors, 1.0);
        assert_eq!(alloc.patterns_used, 2);
        // N1 admits only 10 passwords; its quota is capped there.
        assert!(alloc.queue[0].quota <= 10.0 + f64::EPSILON);
        // Tiny budget: every quota rounds below one password.
        let tiny = DcGenConfig::new(1);
        let alloc = allocate_quotas(&tiny, &patterns, &priors, 1.0);
        assert_eq!(alloc.patterns_used + alloc.deleted, 2);
        assert!(alloc.queue.len() <= 1);
    }
}
