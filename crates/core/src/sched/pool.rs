//! The supervised worker pool shared by every [`Scheduler`].
//!
//! Workers park on a condition variable when idle, every task executes
//! inside a panic boundary with bounded retries, cancellation and
//! deadlines drain cleanly with partial results, and an optional journal
//! makes interrupted runs resumable. The scheduler decides *what* runs
//! and *when* guesses emit; this module owns *how*: execution, fault
//! tolerance, budget accounting, journaling, and telemetry.

use std::collections::HashSet;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::time::{Duration, Instant};

use pagpass_nn::Rng;
use pagpass_patterns::Pattern;
use pagpass_telemetry::{Counter, Field, Gauge, Histogram, Telemetry, DEPTH_BOUNDS};
use parking_lot::{Condvar, Mutex};

use crate::control::{CancelToken, Deadline, FaultPlan, INJECTED_PANIC};
use crate::dcgen::{DcGenConfig, DcGenOptions, DcGenReport, FailedTask};
use crate::inference::InferenceSession;
use crate::journal::{DcGenJournal, JournalTask};
use crate::sched::{Acquire, AcquireCtx, Scheduler, Task};
use crate::{CoreError, PasswordModel};

/// Shared state of the worker pool, guarded by one mutex. Workers park on
/// the companion condvar when the scheduler has nothing ready but
/// siblings are still executing (their commits may publish more work).
pub(crate) struct PoolState {
    /// The pending-work structure and all ordering/budget policy.
    pub scheduler: Box<dyn Scheduler>,
    /// Tasks currently executing; journals persist them alongside the
    /// scheduler's pending work so an interrupted task is simply re-run
    /// on resume.
    pub in_flight: Vec<Task>,
    /// Budget reserved by leaves/emissions that have started (never
    /// exceeds `total`); reservations roll back if the task panics.
    pub reserved: u64,
    /// Passwords actually appended or sunk (including a resumed base).
    pub emitted: u64,
    pub completed: u64,
    pub leaves: usize,
    pub expansions: usize,
    pub deleted: usize,
    pub patterns_used: usize,
    pub retries: u64,
    /// Within-leaf duplicate passwords observed so far.
    pub leaf_duplicates: u64,
    /// KV positions served from worker session caches so far.
    pub prefix_cache_hits: u64,
    pub failed: Vec<FailedTask>,
    pub passwords: Vec<String>,
    /// Log-probabilities of ordered emissions ([`Acquire::Emit`]), in
    /// emission order. Empty for schedulers that only sample leaves.
    pub emission_log_probs: Vec<f64>,
    pub stopping: bool,
    pub journal_errors: u64,
    pub sink_error: Option<std::io::Error>,
}

impl PoolState {
    /// State for a fresh run seeded with `scheduler`.
    pub(crate) fn fresh(
        scheduler: Box<dyn Scheduler>,
        patterns_used: usize,
        deleted: usize,
    ) -> PoolState {
        PoolState {
            scheduler,
            in_flight: Vec::new(),
            reserved: 0,
            emitted: 0,
            completed: 0,
            leaves: 0,
            expansions: 0,
            deleted,
            patterns_used,
            retries: 0,
            leaf_duplicates: 0,
            prefix_cache_hits: 0,
            failed: Vec::new(),
            passwords: Vec::new(),
            emission_log_probs: Vec::new(),
            stopping: false,
            journal_errors: 0,
            sink_error: None,
        }
    }

    /// State continuing from a journal snapshot.
    pub(crate) fn resumed(scheduler: Box<dyn Scheduler>, journal: &DcGenJournal) -> PoolState {
        PoolState {
            scheduler,
            in_flight: Vec::new(),
            reserved: journal.emitted,
            emitted: journal.emitted,
            completed: journal.completed,
            leaves: journal.leaves,
            expansions: journal.expansions,
            deleted: journal.deleted,
            patterns_used: journal.patterns_used,
            retries: journal.retries,
            leaf_duplicates: journal.leaf_duplicates,
            prefix_cache_hits: journal.prefix_cache_hits,
            failed: journal.failed.clone(),
            passwords: Vec::new(),
            emission_log_probs: Vec::new(),
            stopping: false,
            journal_errors: 0,
            sink_error: None,
        }
    }
}

/// Pre-created telemetry handles for the pool's hot path. Handles are
/// cheap `Arc`s over atomics; creating them once up front keeps the
/// registry's name map out of the per-task path entirely.
struct PoolMetrics {
    passwords: Counter,
    duplicates: Counter,
    tasks_completed: Counter,
    tasks_failed: Counter,
    retries: Counter,
    leaves: Counter,
    expansions: Counter,
    deleted: Counter,
    journal_writes: Counter,
    journal_errors: Counter,
    sched_emitted: Counter,
    sched_evictions: Counter,
    queue_depth: Gauge,
    workers_busy: Gauge,
    frontier_depth: Gauge,
    queue_depth_hist: Histogram,
    task_ms: Histogram,
    journal_ms: Histogram,
    gemm_calls: Counter,
    pool_threads: Gauge,
}

impl PoolMetrics {
    fn new(tel: &Telemetry) -> PoolMetrics {
        PoolMetrics {
            passwords: tel.counter("dcgen.passwords"),
            duplicates: tel.counter("dcgen.leaf_duplicates"),
            tasks_completed: tel.counter("dcgen.tasks_completed"),
            tasks_failed: tel.counter("dcgen.tasks_failed"),
            retries: tel.counter("dcgen.task_retries"),
            leaves: tel.counter("dcgen.leaf_tasks"),
            expansions: tel.counter("dcgen.expansions"),
            deleted: tel.counter("dcgen.deleted_tasks"),
            journal_writes: tel.counter("dcgen.journal_writes"),
            journal_errors: tel.counter("dcgen.journal_errors"),
            sched_emitted: tel.counter("sched.emitted"),
            sched_evictions: tel.counter("sched.evictions"),
            queue_depth: tel.gauge("dcgen.queue_depth"),
            workers_busy: tel.gauge("dcgen.workers_busy"),
            frontier_depth: tel.gauge("sched.frontier_depth"),
            queue_depth_hist: tel
                .registry()
                .histogram("dcgen.queue_depth.hist", DEPTH_BOUNDS),
            task_ms: tel.histogram_ms("dcgen.task.ms"),
            journal_ms: tel.histogram_ms("dcgen.journal.ms"),
            gemm_calls: tel.counter("nn.gemm_calls"),
            pool_threads: tel.gauge("nn.pool_threads"),
        }
    }

    /// Refreshes the pool-shape gauges from the shared state.
    fn observe_pool(&self, s: &PoolState) {
        self.queue_depth.set(s.scheduler.pending_len() as f64);
        self.frontier_depth.set(s.scheduler.pending_len() as f64);
        self.workers_busy.set(s.in_flight.len() as f64);
    }
}

/// Duplicates inside one leaf's batch (the only place repeats can occur).
fn count_batch_duplicates(pwds: &[String]) -> u64 {
    let mut seen: HashSet<&str> = HashSet::with_capacity(pwds.len());
    pwds.iter().filter(|p| !seen.insert(p.as_str())).count() as u64
}

/// What one task execution produced (computed outside the lock).
enum TaskOutput {
    Leaf(Vec<String>),
    /// The raw next-character distribution of an expansion; the
    /// scheduler turns it into pending work (quotas, log-probs, pruning)
    /// under the lock in [`Scheduler::commit_split`].
    Split {
        children: Vec<(char, f64)>,
    },
}

/// Derives a task's RNG seed from the run seed and the task id
/// (SplitMix64-style finalizer so nearby ids decorrelate).
fn task_seed(seed: u64, id: u64) -> u64 {
    let mut z = seed ^ id.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Extracts a printable message from a panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "task panicked".to_string()
    }
}

/// Supervised worker pool: executes every task the scheduler hands out,
/// committing splits and emissions back into it, until the scheduler
/// reports done or a stop is requested.
pub(crate) fn run_pool(
    model: &PasswordModel,
    config: &DcGenConfig,
    state: PoolState,
    pattern_list: &[Pattern],
    opts: &DcGenOptions<'_>,
) -> Result<DcGenReport, CoreError> {
    let threshold = config.threshold as f64;
    let total = config.total;
    // DET: the deadline is wall-clock by design — it bounds real run
    // time, not generated work, and never influences emitted passwords.
    // `Deadline::after` reads the monotonic clock exactly once, here;
    // per-task polls compare against that fixed instant.
    let deadline_at = opts.deadline.map(Deadline::after);
    let tel: &Telemetry = match opts.telemetry {
        Some(tel) => tel,
        None => Telemetry::disabled(),
    };
    let metrics = PoolMetrics::new(tel);
    metrics
        .pool_threads
        .set(pagpass_nn::pool::global().threads() as f64);
    // The GEMM counter is process-global; record this run's delta so
    // the metric covers exactly this run.
    let gemm_at_start = pagpass_nn::gemm_calls();
    let run_timer = tel.timer("dcgen.run");
    tel.event(
        "progress",
        "dcgen.start",
        &[
            ("scheduler", Field::Str(state.scheduler.kind().to_string())),
            ("total", Field::U64(total)),
            ("threshold", Field::U64(config.threshold)),
            ("workers", Field::U64(config.workers.max(1) as u64)),
            ("queued", Field::U64(state.scheduler.pending_len() as u64)),
            ("resumed_emitted", Field::U64(state.emitted)),
        ],
    );
    let state = Mutex::new(state);
    let work_ready = Condvar::new();
    let workers = config.workers.max(1);

    std::thread::scope(|scope| {
        for _ in 0..workers {
            let state = &state;
            let work_ready = &work_ready;
            let metrics = &metrics;
            scope.spawn(move || {
                // One KV-cached session per worker, threaded through
                // every split and leaf this worker executes. D&C-GEN's
                // FIFO order means consecutive tasks are usually
                // siblings; SOPG's best-first order jumps subtrees, and
                // the session's LCP seek recomputes only the divergent
                // suffix either way.
                let mut session = InferenceSession::with_telemetry(model, tel);
                loop {
                    // ---- acquire: ask the scheduler for work, emit or
                    // park as it directs.
                    let (task, leaf_n) = {
                        let mut s = state.lock();
                        loop {
                            if s.stopping {
                                return;
                            }
                            let cancelled = opts.cancel.is_some_and(CancelToken::is_cancelled)
                                // DET: deadline check only; see deadline_at.
                                || deadline_at.is_some_and(|d| d.expired());
                            if cancelled {
                                s.stopping = true;
                                work_ready.notify_all();
                                return;
                            }
                            let PoolState {
                                scheduler,
                                reserved,
                                in_flight,
                                ..
                            } = &mut *s;
                            let action = scheduler.acquire(AcquireCtx {
                                patterns: pattern_list,
                                threshold,
                                total,
                                reserved,
                                in_flight,
                            });
                            match action {
                                Acquire::Run { task, leaf_n } => {
                                    s.in_flight.push(task.clone());
                                    metrics.observe_pool(&s);
                                    metrics
                                        .queue_depth_hist
                                        .record(s.scheduler.pending_len() as f64);
                                    break (task, leaf_n);
                                }
                                Acquire::Emit {
                                    passwords,
                                    log_probs,
                                } => {
                                    let n = passwords.len() as u64;
                                    s.emitted += n;
                                    if let Some(sink) = opts.sink {
                                        if let Err(e) = sink.emit(&passwords) {
                                            s.emitted -= n;
                                            s.reserved -= n;
                                            s.sink_error = Some(e);
                                            s.stopping = true;
                                            work_ready.notify_all();
                                            return;
                                        }
                                    }
                                    metrics.passwords.add(n);
                                    metrics.sched_emitted.add(n);
                                    s.emission_log_probs.extend(log_probs);
                                    if opts.sink.is_none() {
                                        s.passwords.extend(passwords);
                                    }
                                    finish_task(config, &mut s, pattern_list, opts, metrics);
                                    metrics.observe_pool(&s);
                                }
                                Acquire::Park => {
                                    // Parked: a sibling's commit may
                                    // publish work, or a stop may arrive.
                                    // The timeout bounds how long a parked
                                    // worker can miss a deadline.
                                    work_ready.wait_for(&mut s, Duration::from_millis(20));
                                }
                                Acquire::Done => {
                                    s.stopping = true;
                                    work_ready.notify_all();
                                    return;
                                }
                            }
                        }
                    };

                    // ---- execute outside the lock, inside a panic boundary.
                    let pattern = &pattern_list[task.pattern_idx];
                    if opts.no_prefix_reuse {
                        // Bench baseline: forget everything between tasks.
                        session.reset();
                    }
                    let reused_before = session.reused_tokens();
                    // DET: telemetry timing only; feeds a histogram, never
                    // the generation path.
                    let task_started = Instant::now();
                    let caught =
                        catch_unwind(AssertUnwindSafe(|| -> Result<TaskOutput, CoreError> {
                            if opts.fault.is_some_and(|f| f.take_task_panic(task.id)) {
                                panic!("{INJECTED_PANIC}");
                            }
                            if let Some(n) = leaf_n {
                                // Leaf: execute (Algorithm 1, lines 5 & 13).
                                let pwds = if n == 0 {
                                    Vec::new()
                                } else {
                                    let mut rng = Rng::seed_from(task_seed(config.seed, task.id));
                                    if opts.no_prefix_reuse {
                                        // Per-row prompt priming, as before
                                        // the inference session existed.
                                        model.generate_leaf(
                                            pattern,
                                            &task.prefix,
                                            n,
                                            config.temperature,
                                            &mut rng,
                                        )?
                                    } else {
                                        session.generate_leaf(
                                            pattern,
                                            &task.prefix,
                                            n,
                                            config.temperature,
                                            &mut rng,
                                        )?
                                    }
                                };
                                Ok(TaskOutput::Leaf(pwds))
                            } else {
                                // Expansion: the model's next-character
                                // distribution (lines 15–20); the scheduler
                                // applies its own pruning/priority policy
                                // when the result commits.
                                let (ids, probs) =
                                    session.next_char_distribution(pattern, &task.prefix)?;
                                let vocab = model.tokenizer().vocab();
                                let mut children = Vec::new();
                                for (&id, &p) in ids.iter().zip(&probs) {
                                    let ch = match vocab.token_of(id) {
                                        Some(pagpass_tokenizer::Token::Char(c)) => c,
                                        _ => continue,
                                    };
                                    children.push((ch, p));
                                }
                                Ok(TaskOutput::Split { children })
                            }
                        }));
                    // A task failing with a CoreError (bad prefix, unknown
                    // character) takes the same retry/abandon path as a
                    // panic: supervision does not care how a task died.
                    let outcome: Result<TaskOutput, String> = match caught {
                        Ok(Ok(out)) => Ok(out),
                        Ok(Err(e)) => Err(e.to_string()),
                        Err(payload) => Err(panic_message(payload.as_ref())),
                    };
                    let task_reuse = session.reused_tokens() - reused_before;

                    metrics
                        .task_ms
                        .record(task_started.elapsed().as_secs_f64() * 1e3);
                    // Duplicate counting hashes the whole batch — do it
                    // before taking the lock.
                    let batch_dups = match &outcome {
                        Ok(TaskOutput::Leaf(pwds)) => count_batch_duplicates(pwds),
                        _ => 0,
                    };

                    // ---- commit under the lock.
                    let mut s = state.lock();
                    s.prefix_cache_hits += task_reuse;
                    if let Some(pos) = s.in_flight.iter().position(|t| t.id == task.id) {
                        s.in_flight.remove(pos);
                    }
                    match outcome {
                        Ok(TaskOutput::Leaf(pwds)) => {
                            s.leaves += 1;
                            s.emitted += pwds.len() as u64;
                            if let Some(sink) = opts.sink {
                                if let Err(e) = sink.emit(&pwds) {
                                    s.emitted -= pwds.len() as u64;
                                    s.reserved -= leaf_n.unwrap_or(0) as u64;
                                    s.sink_error = Some(e);
                                    s.stopping = true;
                                    work_ready.notify_all();
                                    return;
                                }
                            }
                            s.leaf_duplicates += batch_dups;
                            metrics.leaves.inc();
                            metrics.passwords.add(pwds.len() as u64);
                            metrics.sched_emitted.add(pwds.len() as u64);
                            metrics.duplicates.add(batch_dups);
                            if opts.sink.is_none() {
                                s.passwords.extend(pwds);
                            }
                            finish_task(config, &mut s, pattern_list, opts, metrics);
                        }
                        Ok(TaskOutput::Split { children }) => {
                            let deleted = s.scheduler.commit_split(&task, &children);
                            s.expansions += 1;
                            s.deleted += deleted;
                            metrics.expansions.inc();
                            metrics.deleted.add(deleted as u64);
                            finish_task(config, &mut s, pattern_list, opts, metrics);
                            work_ready.notify_all();
                        }
                        Err(message) => {
                            // Supervision: retry with the same id (same RNG
                            // stream), or abandon into `failed`.
                            if let Some(n) = leaf_n {
                                s.reserved -= n as u64;
                            }
                            if task.retries_left > 0 {
                                s.retries += 1;
                                metrics.retries.inc();
                                s.scheduler.requeue(Task {
                                    retries_left: task.retries_left - 1,
                                    ..task
                                });
                                work_ready.notify_all();
                            } else {
                                metrics.tasks_failed.inc();
                                s.failed.push(FailedTask {
                                    pattern: pattern.to_string(),
                                    prefix: task.prefix.clone(),
                                    quota: task.quota,
                                    error: message,
                                });
                            }
                        }
                    }
                    metrics.observe_pool(&s);
                }
            });
        }
    });

    let mut s = state.into_inner();
    let interrupted = s.scheduler.interrupted(s.reserved, total);
    if let Some(path) = opts.journal {
        write_journal(config, &mut s, pattern_list, path, opts.fault, &metrics);
    }
    metrics.observe_pool(&s);
    metrics.sched_evictions.add(s.scheduler.evictions());
    metrics
        .gemm_calls
        .add(pagpass_nn::gemm_calls().saturating_sub(gemm_at_start));
    drop(run_timer); // records dcgen.run.ms before the final event
    tel.event(
        "progress",
        "dcgen.done",
        &[
            ("emitted", Field::U64(s.emitted)),
            ("leaves", Field::U64(s.leaves as u64)),
            ("expansions", Field::U64(s.expansions as u64)),
            ("failed_tasks", Field::U64(s.failed.len() as u64)),
            ("prefix_cache_hits", Field::U64(s.prefix_cache_hits)),
            ("interrupted", Field::Bool(interrupted)),
        ],
    );
    if let Some(e) = s.sink_error {
        return Err(CoreError::Io(e));
    }
    Ok(DcGenReport {
        passwords: s.passwords,
        leaf_tasks: s.leaves,
        expansions: s.expansions,
        deleted_tasks: s.deleted,
        patterns_used: s.patterns_used,
        emitted: s.emitted,
        failed_tasks: s.failed,
        retries: s.retries,
        leaf_duplicates: s.leaf_duplicates,
        prefix_cache_hits: s.prefix_cache_hits,
        frontier_evictions: s.scheduler.evictions(),
        emission_log_probs: s.emission_log_probs,
        interrupted,
        journal_errors: s.journal_errors,
    })
}

/// Post-completion bookkeeping: success counter, periodic journal,
/// injected kill point. Ordered emissions count as completed work so the
/// journal cadence advances for frontier schedulers too.
fn finish_task(
    config: &DcGenConfig,
    s: &mut PoolState,
    pattern_list: &[Pattern],
    opts: &DcGenOptions<'_>,
    metrics: &PoolMetrics,
) {
    s.completed += 1;
    metrics.tasks_completed.inc();
    if let Some(path) = opts.journal {
        let every = config.journal_every;
        if every > 0 && s.completed.is_multiple_of(every) {
            write_journal(config, s, pattern_list, path, opts.fault, metrics);
        }
    }
    if opts.fault.is_some_and(|f| f.should_cancel(s.completed)) {
        s.stopping = true;
    }
}

/// Snapshots `s` to the journal file. Failures are counted, not fatal:
/// the journal improves crash recovery but must never take down a run
/// that is otherwise producing passwords.
fn write_journal(
    config: &DcGenConfig,
    s: &mut PoolState,
    pattern_list: &[Pattern],
    path: &Path,
    fault: Option<&FaultPlan>,
    metrics: &PoolMetrics,
) {
    let journal = DcGenJournal {
        total: config.total,
        threshold: config.threshold,
        temperature: config.temperature,
        seed: config.seed,
        workers: config.workers,
        max_task_retries: config.max_task_retries,
        journal_every: config.journal_every,
        scheduler: s.scheduler.kind(),
        sched_config_hash: config.sched_config_hash(),
        frontier_cap: config.frontier_cap,
        kernel: crate::kernel::KernelChoice::current(),
        patterns: pattern_list.to_vec(),
        emitted: s.emitted,
        completed: s.completed,
        leaves: s.leaves,
        expansions: s.expansions,
        deleted: s.deleted,
        patterns_used: s.patterns_used,
        retries: s.retries,
        leaf_duplicates: s.leaf_duplicates,
        prefix_cache_hits: s.prefix_cache_hits,
        next_id: s.scheduler.next_id(),
        tasks: s
            .scheduler
            .pending_tasks()
            .into_iter()
            .chain(s.in_flight.iter().map(|t| JournalTask {
                id: t.id,
                pattern_idx: t.pattern_idx,
                prefix: t.prefix.clone(),
                quota: t.quota,
            }))
            .collect(),
        failed: s.failed.clone(),
    };
    let injected = fault.is_some_and(FaultPlan::take_write_failure);
    // DET: telemetry timing only; journal contents stay deterministic.
    let started = Instant::now();
    if injected || journal.save(path).is_err() {
        s.journal_errors += 1;
        metrics.journal_errors.inc();
    } else {
        metrics.journal_writes.inc();
    }
    metrics
        .journal_ms
        .record(started.elapsed().as_secs_f64() * 1e3);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn task_seed_decorrelates_nearby_ids() {
        let a = task_seed(0, 1);
        let b = task_seed(0, 2);
        assert_ne!(a, b);
        assert_ne!(task_seed(1, 1), a, "run seed perturbs every stream");
    }

    #[test]
    fn batch_duplicate_counting() {
        let batch: Vec<String> = ["a", "b", "a", "a"].iter().map(|s| s.to_string()).collect();
        assert_eq!(count_batch_duplicates(&batch), 2);
        assert_eq!(count_batch_duplicates(&[]), 0);
    }
}
