//! D&C-GEN scheduling (paper Algorithm 1), re-homed behind [`Scheduler`].
//!
//! This is a mechanical extraction of the decision logic that used to be
//! fused into the worker pool, and it must stay *byte-identical* to it:
//! the FIFO queue order, the leaf cutoff, the up-front budget
//! reservation, the child-quota arithmetic, and the id assignment order
//! all feed either task RNG streams or the golden output directly
//! (`crates/core/tests/golden/dcgen_seed9.txt` pins the result).

use std::collections::VecDeque;

use super::{Acquire, AcquireCtx, Scheduler, SchedulerKind, Task};
use crate::journal::JournalTask;

/// FIFO divide-and-conquer scheduler: quotas split along the model's
/// next-character distribution until they fall under the threshold, then
/// leaves sample their quota.
pub(crate) struct DcgenScheduler {
    queue: VecDeque<Task>,
    next_id: u64,
    retries: u32,
}

impl DcgenScheduler {
    pub(crate) fn new(queue: VecDeque<Task>, next_id: u64, retries: u32) -> DcgenScheduler {
        DcgenScheduler {
            queue,
            next_id,
            retries,
        }
    }
}

impl Scheduler for DcgenScheduler {
    fn kind(&self) -> SchedulerKind {
        SchedulerKind::Dcgen
    }

    fn acquire(&mut self, ctx: AcquireCtx<'_>) -> Acquire {
        if let Some(task) = self.queue.pop_front() {
            let pattern = &ctx.patterns[task.pattern_idx];
            let is_leaf =
                task.quota <= ctx.threshold || task.prefix.chars().count() == pattern.char_len();
            // Leaves reserve against the global budget up front, so the
            // run stops at exactly `total` no matter how quotas rounded.
            let leaf_n = is_leaf.then(|| {
                let want = task.quota.round().max(1.0) as u64;
                let n = want.min(ctx.total - *ctx.reserved);
                *ctx.reserved += n;
                n as usize
            });
            return Acquire::Run { task, leaf_n };
        }
        if ctx.in_flight.is_empty() {
            // Nothing queued and nobody executing: the tree is exhausted.
            Acquire::Done
        } else {
            Acquire::Park
        }
    }

    fn commit_split(&mut self, parent: &Task, children: &[(char, f64)]) -> usize {
        let mut deleted = 0usize;
        for &(ch, p) in children {
            let child_quota = parent.quota * p;
            if child_quota < 1.0 {
                deleted += 1;
                continue;
            }
            let mut prefix = parent.prefix.clone();
            prefix.push(ch);
            let id = self.next_id;
            self.next_id += 1;
            self.queue.push_back(Task {
                id,
                pattern_idx: parent.pattern_idx,
                prefix,
                quota: child_quota,
                retries_left: self.retries,
            });
        }
        deleted
    }

    fn requeue(&mut self, task: Task) {
        self.queue.push_back(task);
    }

    fn pending_len(&self) -> usize {
        self.queue.len()
    }

    fn pending_tasks(&self) -> Vec<JournalTask> {
        self.queue
            .iter()
            .map(|t| JournalTask {
                id: t.id,
                pattern_idx: t.pattern_idx,
                prefix: t.prefix.clone(),
                quota: t.quota,
            })
            .collect()
    }

    fn next_id(&self) -> u64 {
        self.next_id
    }

    fn interrupted(&self, _reserved: u64, _total: u64) -> bool {
        !self.queue.is_empty()
    }
}
