//! SOPG-style best-first ordered enumeration (arXiv 2403.09954).
//!
//! The frontier is a set of partial sequences ordered by total
//! log-probability. Each step either *emits* the frontier maximum (when
//! it is a complete password and no in-flight expansion could still
//! produce something more probable) or *expands* the most probable
//! incomplete node through the model's next-character distribution.
//! Children carry `lp(parent) + ln p(char)`, which never exceeds the
//! parent's log-probability — so the emitted sequence is non-increasing
//! in probability by construction, and every emission is a distinct
//! root-to-leaf path, so the repeat rate is exactly zero.
//!
//! # Memory cap and eviction
//!
//! An unbounded frontier can grow with the whole enumerated tree. A
//! `frontier_cap > 0` bounds it: after every insertion the *minimum*
//! node is evicted until the cap holds. Eviction is deterministic (the
//! frontier is a `BTreeSet` with a total order: log-prob bits, then
//! pattern index, then prefix) and only ever discards the least
//! probable pending work, so it can suppress low-probability tail
//! output but can never reorder what is emitted. Evictions are counted
//! and reported ([`DcGenReport::frontier_evictions`]
//! (crate::DcGenReport::frontier_evictions)).
//!
//! # Budget semantics
//!
//! `total` is an exact emission budget: each emitted password reserves
//! one slot, and the run completes the moment the budget is reserved.
//! The division threshold plays no role here — there are no leaves; the
//! frontier itself is the emission site.

use std::cmp::Ordering;
use std::collections::BTreeSet;

use pagpass_patterns::Pattern;

use super::{Acquire, AcquireCtx, Scheduler, SchedulerKind, Task};
use crate::dcgen::DcGenConfig;
use crate::journal::{DcGenJournal, JournalTask};

/// One frontier entry: a partial (or complete) sequence and its total
/// log-probability under the model, pattern prior included.
#[derive(Debug, Clone)]
struct Node {
    lp: f64,
    pattern_idx: usize,
    prefix: String,
}

impl Node {
    fn is_complete(&self, patterns: &[Pattern]) -> bool {
        self.prefix.chars().count() == patterns[self.pattern_idx].char_len()
    }
}

// Total order: log-probability first (total_cmp — lp is never NaN, but
// the order must be total for BTreeSet), then pattern index and prefix
// as deterministic tie-breaks so eviction and pop order never depend on
// float coincidences.
impl Ord for Node {
    fn cmp(&self, other: &Node) -> Ordering {
        self.lp
            .total_cmp(&other.lp)
            .then_with(|| self.pattern_idx.cmp(&other.pattern_idx))
            .then_with(|| self.prefix.cmp(&other.prefix))
    }
}

impl PartialOrd for Node {
    fn partial_cmp(&self, other: &Node) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl PartialEq for Node {
    fn eq(&self, other: &Node) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Node {}

/// Best-first ordered enumerator with a bounded frontier.
pub(crate) struct SopgScheduler {
    frontier: BTreeSet<Node>,
    /// Maximum frontier size; `usize::MAX` when uncapped.
    cap: usize,
    next_id: u64,
    retries: u32,
    evictions: u64,
}

impl SopgScheduler {
    fn with_cap(frontier_cap: u64, next_id: u64, retries: u32) -> SopgScheduler {
        SopgScheduler {
            frontier: BTreeSet::new(),
            cap: if frontier_cap == 0 {
                usize::MAX
            } else {
                frontier_cap as usize
            },
            next_id,
            retries,
            evictions: 0,
        }
    }

    /// Seeds one root per pattern with `lp = ln(Pr(P_i))` (renormalized
    /// over the kept set). Returns the scheduler and how many patterns
    /// received a root.
    pub(crate) fn seed(config: &DcGenConfig, priors: &[f64], mass: f64) -> (SopgScheduler, usize) {
        let mut sched = SopgScheduler::with_cap(config.frontier_cap, 0, config.max_task_retries);
        let mut patterns_used = 0usize;
        for (idx, &pr) in priors.iter().enumerate() {
            let lp = (pr / mass).ln();
            if !lp.is_finite() {
                continue;
            }
            patterns_used += 1;
            sched.insert(Node {
                lp,
                pattern_idx: idx,
                prefix: String::new(),
            });
        }
        (sched, patterns_used)
    }

    /// Rebuilds the frontier from a journal snapshot (task quotas carry
    /// the node log-probabilities bit-exactly).
    pub(crate) fn restore(config: &DcGenConfig, journal: &DcGenJournal) -> SopgScheduler {
        let mut sched = SopgScheduler::with_cap(
            config.frontier_cap,
            journal.next_id,
            journal.max_task_retries,
        );
        for t in &journal.tasks {
            sched.insert(Node {
                lp: t.quota,
                pattern_idx: t.pattern_idx,
                prefix: t.prefix.clone(),
            });
        }
        sched
    }

    /// Inserts a node and enforces the cap by evicting minima.
    fn insert(&mut self, node: Node) {
        self.frontier.insert(node);
        while self.frontier.len() > self.cap {
            self.frontier.pop_first();
            self.evictions += 1;
        }
    }
}

impl Scheduler for SopgScheduler {
    fn kind(&self) -> SchedulerKind {
        SchedulerKind::Sopg
    }

    fn acquire(&mut self, ctx: AcquireCtx<'_>) -> Acquire {
        if *ctx.reserved >= ctx.total {
            return Acquire::Done;
        }
        // In-flight expansions can still insert children at up to their
        // own log-probability, so the frontier maximum is only safe to
        // emit once it is at least as probable as every executing node.
        let barrier = ctx
            .in_flight
            .iter()
            .map(|t| t.quota)
            .fold(f64::NEG_INFINITY, f64::max);

        // Drain every emittable maximum in one pass (consecutive
        // complete nodes above the barrier), respecting the budget.
        let mut passwords = Vec::new();
        let mut log_probs = Vec::new();
        while *ctx.reserved < ctx.total {
            let emittable = self
                .frontier
                .last()
                .is_some_and(|top| top.lp >= barrier && top.is_complete(ctx.patterns));
            if !emittable {
                break;
            }
            if let Some(node) = self.frontier.pop_last() {
                *ctx.reserved += 1;
                log_probs.push(node.lp);
                passwords.push(node.prefix);
            }
        }
        if !passwords.is_empty() {
            return Acquire::Emit {
                passwords,
                log_probs,
            };
        }

        // Otherwise expand the most probable incomplete node; complete
        // nodes blocked by the barrier stay put until it clears.
        let target = self
            .frontier
            .iter()
            .rev()
            .find(|n| !n.is_complete(ctx.patterns))
            .cloned();
        if let Some(node) = target {
            self.frontier.remove(&node);
            let id = self.next_id;
            self.next_id += 1;
            return Acquire::Run {
                task: Task {
                    id,
                    pattern_idx: node.pattern_idx,
                    prefix: node.prefix,
                    quota: node.lp,
                    retries_left: self.retries,
                },
                leaf_n: None,
            };
        }
        if self.frontier.is_empty() && ctx.in_flight.is_empty() {
            // Search space exhausted before the budget.
            Acquire::Done
        } else {
            Acquire::Park
        }
    }

    fn commit_split(&mut self, parent: &Task, children: &[(char, f64)]) -> usize {
        let parent_lp = parent.quota;
        let mut deleted = 0usize;
        for &(ch, p) in children {
            if p <= 0.0 {
                deleted += 1;
                continue;
            }
            let lp = parent_lp + p.ln();
            if !lp.is_finite() {
                deleted += 1;
                continue;
            }
            let mut prefix = parent.prefix.clone();
            prefix.push(ch);
            self.insert(Node {
                lp,
                pattern_idx: parent.pattern_idx,
                prefix,
            });
        }
        deleted
    }

    fn requeue(&mut self, task: Task) {
        self.insert(Node {
            lp: task.quota,
            pattern_idx: task.pattern_idx,
            prefix: task.prefix,
        });
    }

    fn pending_len(&self) -> usize {
        self.frontier.len()
    }

    fn pending_tasks(&self) -> Vec<JournalTask> {
        // Most probable first, so a truncated inspection of the journal
        // shows the work that matters. Ids are synthetic: SOPG task ids
        // never feed RNG streams (expansions do not sample).
        self.frontier
            .iter()
            .rev()
            .enumerate()
            .map(|(i, n)| JournalTask {
                id: i as u64,
                pattern_idx: n.pattern_idx,
                prefix: n.prefix.clone(),
                quota: n.lp,
            })
            .collect()
    }

    fn next_id(&self) -> u64 {
        self.next_id
    }

    fn evictions(&self) -> u64 {
        self.evictions
    }

    fn interrupted(&self, reserved: u64, total: u64) -> bool {
        // A non-empty frontier is the normal end state once the budget
        // is reserved; only an early stop leaves resumable work behind.
        !self.frontier.is_empty() && reserved < total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn patterns() -> Vec<Pattern> {
        vec!["L1N1".parse().unwrap(), "N2".parse().unwrap()]
    }

    fn ctx<'a>(
        patterns: &'a [Pattern],
        reserved: &'a mut u64,
        total: u64,
        in_flight: &'a [Task],
    ) -> AcquireCtx<'a> {
        AcquireCtx {
            patterns,
            threshold: 64.0,
            total,
            reserved,
            in_flight,
        }
    }

    #[test]
    fn emits_frontier_maxima_in_descending_order() {
        let pats = patterns();
        let mut s = SopgScheduler::with_cap(0, 0, 2);
        s.insert(Node {
            lp: -1.0,
            pattern_idx: 0,
            prefix: "a1".into(),
        });
        s.insert(Node {
            lp: -0.5,
            pattern_idx: 1,
            prefix: "42".into(),
        });
        s.insert(Node {
            lp: -2.0,
            pattern_idx: 1,
            prefix: "07".into(),
        });
        let mut reserved = 0;
        match s.acquire(ctx(&pats, &mut reserved, 10, &[])) {
            Acquire::Emit {
                passwords,
                log_probs,
            } => {
                assert_eq!(passwords, vec!["42", "a1", "07"]);
                assert_eq!(log_probs, vec![-0.5, -1.0, -2.0]);
            }
            _ => panic!("expected emission"),
        }
        assert_eq!(reserved, 3);
    }

    #[test]
    fn expands_best_incomplete_before_lower_complete() {
        let pats = patterns();
        let mut s = SopgScheduler::with_cap(0, 0, 2);
        // Incomplete node outranks the complete one: expand, don't emit.
        s.insert(Node {
            lp: -0.2,
            pattern_idx: 0,
            prefix: "a".into(),
        });
        s.insert(Node {
            lp: -0.9,
            pattern_idx: 1,
            prefix: "11".into(),
        });
        let mut reserved = 0;
        match s.acquire(ctx(&pats, &mut reserved, 10, &[])) {
            Acquire::Run { task, leaf_n } => {
                assert_eq!(task.prefix, "a");
                assert_eq!(leaf_n, None);
            }
            _ => panic!("expected expansion"),
        }
        assert_eq!(reserved, 0, "expansion reserves nothing");
    }

    #[test]
    fn in_flight_barrier_blocks_emission() {
        let pats = patterns();
        let mut s = SopgScheduler::with_cap(0, 1, 2);
        s.insert(Node {
            lp: -1.5,
            pattern_idx: 1,
            prefix: "99".into(),
        });
        // An executing expansion at lp -1.0 could still beat -1.5.
        let busy = [Task {
            id: 0,
            pattern_idx: 0,
            prefix: "z".into(),
            quota: -1.0,
            retries_left: 2,
        }];
        let mut reserved = 0;
        assert!(matches!(
            s.acquire(ctx(&pats, &mut reserved, 10, &busy)),
            Acquire::Park
        ));
        // Barrier cleared: the complete node emits.
        assert!(matches!(
            s.acquire(ctx(&pats, &mut reserved, 10, &[])),
            Acquire::Emit { .. }
        ));
    }

    #[test]
    fn budget_bounds_emission_and_flags_done() {
        let pats = patterns();
        let mut s = SopgScheduler::with_cap(0, 0, 2);
        for (i, lp) in [(-0.1f64), (-0.2), (-0.3)].iter().enumerate() {
            s.insert(Node {
                lp: *lp,
                pattern_idx: 1,
                prefix: format!("{i}{i}"),
            });
        }
        let mut reserved = 0;
        match s.acquire(ctx(&pats, &mut reserved, 2, &[])) {
            Acquire::Emit { passwords, .. } => assert_eq!(passwords.len(), 2),
            _ => panic!("expected emission"),
        }
        assert!(matches!(
            s.acquire(ctx(&pats, &mut reserved, 2, &[])),
            Acquire::Done
        ));
        assert!(
            !s.interrupted(2, 2),
            "budget completion is not an interrupt"
        );
        assert!(s.interrupted(1, 2), "early stop with pending work is");
    }

    #[test]
    fn frontier_cap_evicts_minima_deterministically() {
        let pats = patterns();
        let mut s = SopgScheduler::with_cap(2, 0, 2);
        for (lp, pfx) in [(-3.0, "00"), (-1.0, "11"), (-2.0, "22"), (-0.5, "33")] {
            s.insert(Node {
                lp,
                pattern_idx: 1,
                prefix: pfx.into(),
            });
        }
        assert_eq!(s.pending_len(), 2);
        assert_eq!(s.evictions(), 2);
        let mut reserved = 0;
        match s.acquire(ctx(&pats, &mut reserved, 10, &[])) {
            Acquire::Emit { passwords, .. } => {
                // The two most probable survive, still in order.
                assert_eq!(passwords, vec!["33", "11"]);
            }
            _ => panic!("expected emission"),
        }
    }

    #[test]
    fn commit_split_prunes_zero_probability_children() {
        let mut s = SopgScheduler::with_cap(0, 0, 2);
        let parent = Task {
            id: 0,
            pattern_idx: 0,
            prefix: String::new(),
            quota: -0.5,
            retries_left: 2,
        };
        let deleted = s.commit_split(&parent, &[('a', 0.6), ('b', 0.0), ('c', 0.4)]);
        assert_eq!(deleted, 1);
        assert_eq!(s.pending_len(), 2);
        // Children carry parent lp plus ln p.
        let tasks = s.pending_tasks();
        assert!((tasks[0].quota - (-0.5 + 0.6f64.ln())).abs() < 1e-12);
    }
}
