//! Plain pattern-conditioned sampling: the no-division baseline.
//!
//! Budget is allocated across patterns exactly like D&C-GEN (so the two
//! are comparable at equal `N`), but every task is sampled directly —
//! the model's next-character distribution is never used to split, so
//! repeats are bounded only by chance. Oversized quotas are chunked at
//! the division threshold purely to bound leaf batch memory; chunking
//! assigns fresh ids, so each chunk draws from its own RNG stream and
//! single-worker runs stay deterministic.

use std::collections::VecDeque;

use super::{Acquire, AcquireCtx, Scheduler, SchedulerKind, Task};
use crate::journal::JournalTask;

/// FIFO sampler: every acquired task is a leaf; quotas above the
/// threshold are split arithmetically (no model guidance).
pub(crate) struct SampleScheduler {
    queue: VecDeque<Task>,
    next_id: u64,
    retries: u32,
}

impl SampleScheduler {
    pub(crate) fn new(queue: VecDeque<Task>, next_id: u64, retries: u32) -> SampleScheduler {
        SampleScheduler {
            queue,
            next_id,
            retries,
        }
    }
}

impl Scheduler for SampleScheduler {
    fn kind(&self) -> SchedulerKind {
        SchedulerKind::Sample
    }

    fn acquire(&mut self, ctx: AcquireCtx<'_>) -> Acquire {
        if let Some(mut task) = self.queue.pop_front() {
            // Chunk oversized quotas so one leaf batch never exceeds the
            // threshold; the remainder re-queues under a fresh id.
            if ctx.threshold >= 1.0 && task.quota > ctx.threshold {
                let rest = task.quota - ctx.threshold;
                if rest >= 1.0 {
                    let id = self.next_id;
                    self.next_id += 1;
                    self.queue.push_back(Task {
                        id,
                        pattern_idx: task.pattern_idx,
                        prefix: task.prefix.clone(),
                        quota: rest,
                        retries_left: self.retries,
                    });
                }
                task.quota = ctx.threshold;
            }
            let want = task.quota.round().max(1.0) as u64;
            let n = want.min(ctx.total - *ctx.reserved);
            *ctx.reserved += n;
            return Acquire::Run {
                task,
                leaf_n: Some(n as usize),
            };
        }
        if ctx.in_flight.is_empty() {
            Acquire::Done
        } else {
            Acquire::Park
        }
    }

    fn commit_split(&mut self, _parent: &Task, _children: &[(char, f64)]) -> usize {
        // Unreachable: every task this scheduler hands out is a leaf.
        debug_assert!(false, "plain sampling never expands tasks");
        0
    }

    fn requeue(&mut self, task: Task) {
        self.queue.push_back(task);
    }

    fn pending_len(&self) -> usize {
        self.queue.len()
    }

    fn pending_tasks(&self) -> Vec<JournalTask> {
        self.queue
            .iter()
            .map(|t| JournalTask {
                id: t.id,
                pattern_idx: t.pattern_idx,
                prefix: t.prefix.clone(),
                quota: t.quota,
            })
            .collect()
    }

    fn next_id(&self) -> u64 {
        self.next_id
    }

    fn interrupted(&self, _reserved: u64, _total: u64) -> bool {
        !self.queue.is_empty()
    }
}
