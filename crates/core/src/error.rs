use std::error::Error;
use std::fmt;

use pagpass_tokenizer::TokenizeError;

/// Errors surfaced by model training and generation.
#[derive(Debug)]
#[non_exhaustive]
pub enum CoreError {
    /// Encoding a training password failed.
    Tokenize(TokenizeError),
    /// The training corpus was empty after encoding.
    EmptyCorpus,
    /// Weight persistence failed.
    Io(std::io::Error),
    /// A stored model could not be loaded.
    Load(pagpass_nn::LoadError),
    /// A weight file is internally valid but shaped for a different
    /// tokenizer, so its embedding/output matrices cannot multiply against
    /// this build's vocabulary. Caught at load so the mismatch surfaces as
    /// an error on the user-supplied file instead of a shape panic deep in
    /// a GEMM kernel mid-generation.
    VocabMismatch {
        /// Vocabulary rows in the loaded weight file.
        file_vocab: usize,
        /// Vocabulary size of this build's tokenizer.
        expected_vocab: usize,
    },
    /// An operation requiring a specific model kind was invoked on the
    /// other (e.g. D&C-GEN on a PassGPT model).
    WrongKind {
        /// The kind the operation requires.
        expected: &'static str,
    },
    /// A password prefix handed to pattern-constrained generation does not
    /// fit inside the pattern (the prefix must leave at least the requested
    /// positions open).
    PrefixTooLong {
        /// Characters already fixed by the caller.
        prefix_len: usize,
        /// Total pattern length in characters.
        pattern_len: usize,
    },
    /// A password's encoded rule does not fit the model's context window,
    /// so it cannot be scored. Surfaced as an error instead of letting the
    /// decode panic mid-forward: scoring servers must reject oversized
    /// inputs per request, not lose a worker to them.
    RuleTooLong {
        /// Tokens in the encoded rule.
        rule_len: usize,
        /// The model's context window.
        ctx_len: usize,
    },
    /// A user-supplied configuration value was invalid (bad flag value,
    /// unknown mode name).
    Config(String),
    /// A D&C-GEN journal was malformed or failed its checksum.
    Journal(String),
    /// A training checkpoint was malformed or failed its checksum.
    Checkpoint(String),
    /// An internal invariant was violated. Surfacing this as an error
    /// instead of panicking keeps library code `.unwrap()`-free (enforced
    /// by `pagpass analyze`); seeing one is always a bug.
    Internal(&'static str),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Tokenize(e) => write!(f, "tokenization failed: {e}"),
            CoreError::EmptyCorpus => write!(f, "training corpus is empty after encoding"),
            CoreError::Io(e) => write!(f, "i/o error: {e}"),
            CoreError::Load(e) => write!(f, "model load failed: {e}"),
            CoreError::VocabMismatch {
                file_vocab,
                expected_vocab,
            } => write!(
                f,
                "weight file was built for a {file_vocab}-token vocabulary, \
                 but this build tokenizes into {expected_vocab} tokens"
            ),
            CoreError::WrongKind { expected } => {
                write!(f, "operation requires a {expected} model")
            }
            CoreError::PrefixTooLong {
                prefix_len,
                pattern_len,
            } => write!(
                f,
                "prefix of {prefix_len} characters does not fit a {pattern_len}-character pattern"
            ),
            CoreError::RuleTooLong { rule_len, ctx_len } => write!(
                f,
                "password encodes to {rule_len} tokens, beyond the {ctx_len}-token context window"
            ),
            CoreError::Config(what) => write!(f, "invalid configuration: {what}"),
            CoreError::Journal(what) => write!(f, "bad generation journal: {what}"),
            CoreError::Checkpoint(what) => write!(f, "bad training checkpoint: {what}"),
            CoreError::Internal(what) => write!(f, "internal invariant violated: {what}"),
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoreError::Tokenize(e) => Some(e),
            CoreError::Io(e) => Some(e),
            CoreError::Load(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TokenizeError> for CoreError {
    fn from(e: TokenizeError) -> CoreError {
        CoreError::Tokenize(e)
    }
}

impl From<std::io::Error> for CoreError {
    fn from(e: std::io::Error) -> CoreError {
        CoreError::Io(e)
    }
}

impl From<pagpass_nn::LoadError> for CoreError {
    fn from(e: pagpass_nn::LoadError) -> CoreError {
        CoreError::Load(e)
    }
}
