use std::cmp::Ordering;
use std::collections::BinaryHeap;

use pagpass_patterns::Pattern;
use pagpass_tokenizer::{TokenId, TokenizeError, Vocab};

use crate::inference::InferenceSession;
use crate::{CoreError, ModelKind, PasswordModel};

/// Result of a guided enumeration.
#[derive(Debug, Clone, PartialEq)]
pub struct EnumerationReport {
    /// Passwords in (approximately exact) descending model probability.
    pub passwords: Vec<String>,
    /// Natural-log probability of each password under the model.
    pub log_probs: Vec<f64>,
    /// Search nodes expanded (each costs one model forward pass).
    pub expanded: usize,
}

impl PasswordModel {
    /// Enumerates the `n` most probable passwords conforming to `pattern`,
    /// in descending model probability — the GPT analogue of PCFG's
    /// priority-order guessing and OMEN's level enumeration, and a
    /// duplicate-free alternative to sampling for small-to-medium guess
    /// counts.
    ///
    /// Best-first search over password prefixes: the frontier holds
    /// partial passwords scored by their exact log-probability; expanding
    /// one costs a single model evaluation restricted to the character
    /// class the pattern demands next. Because extending a prefix can only
    /// lower its probability, completed passwords pop in globally
    /// descending order. `max_expansions` bounds the model-evaluation
    /// budget (the search returns what it found when exhausted).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Tokenize`] if an enumerated prefix fails to
    /// encode (an internal invariant — frontier characters come from the
    /// vocabulary).
    ///
    /// # Panics
    ///
    /// Panics if `max_expansions == 0`.
    pub fn enumerate_guided(
        &self,
        pattern: &Pattern,
        n: usize,
        max_expansions: usize,
    ) -> Result<EnumerationReport, CoreError> {
        assert!(max_expansions > 0, "the expansion budget must be positive");
        let vocab = self.tokenizer().vocab();
        // Best-first search expands prefixes in probability order, which
        // still shares long prompts between consecutive pops — one session
        // reuses whatever common prefix remains.
        let mut session = InferenceSession::new(self);
        let total = pattern.char_len();
        let mut heap: BinaryHeap<Node> = BinaryHeap::new();
        heap.push(Node {
            lp: 0.0,
            prefix: String::new(),
        });
        let mut report = EnumerationReport {
            passwords: Vec::new(),
            log_probs: Vec::new(),
            expanded: 0,
        };

        while let Some(node) = heap.pop() {
            if report.passwords.len() >= n {
                break;
            }
            if node.prefix.chars().count() == total {
                report.log_probs.push(node.lp);
                report.passwords.push(node.prefix);
                continue;
            }
            if report.expanded >= max_expansions {
                // Budget exhausted: keep draining completed nodes only.
                continue;
            }
            report.expanded += 1;
            let (ids, probs) = session.next_char_distribution(pattern, &node.prefix)?;
            for (&id, &p) in ids.iter().zip(&probs) {
                if p <= 0.0 {
                    continue;
                }
                let Some(c) = char_of(vocab, id) else {
                    continue;
                };
                let mut prefix = node.prefix.clone();
                prefix.push(c);
                heap.push(Node {
                    lp: node.lp + p.ln(),
                    prefix,
                });
            }
        }
        Ok(report)
    }

    /// Enumerates the `n` most probable passwords under a PassGPT-style
    /// free search (no pattern): children are all characters plus `<EOS>`.
    /// Only meaningful for [`ModelKind::PassGpt`]; PagPassGPT enumerates
    /// per pattern via [`enumerate_guided`](Self::enumerate_guided) (that
    /// is exactly what D&C-GEN generalizes).
    ///
    /// # Errors
    ///
    /// Returns [`crate::CoreError::WrongKind`] for PagPassGPT models.
    ///
    /// # Panics
    ///
    /// Panics if `max_expansions == 0`.
    pub fn enumerate_free(
        &self,
        n: usize,
        max_len: usize,
        max_expansions: usize,
    ) -> Result<EnumerationReport, crate::CoreError> {
        assert!(max_expansions > 0, "the expansion budget must be positive");
        if self.kind() != ModelKind::PassGpt {
            return Err(crate::CoreError::WrongKind {
                expected: "PassGPT",
            });
        }
        let vocab = self.tokenizer().vocab();
        let mut session = InferenceSession::new(self);
        let mut heap: BinaryHeap<FreeNode> = BinaryHeap::new();
        heap.push(FreeNode {
            lp: 0.0,
            prefix: String::new(),
            complete: false,
        });
        let mut report = EnumerationReport {
            passwords: Vec::new(),
            log_probs: Vec::new(),
            expanded: 0,
        };
        while let Some(node) = heap.pop() {
            if report.passwords.len() >= n {
                break;
            }
            if node.complete {
                report.log_probs.push(node.lp);
                report.passwords.push(node.prefix);
                continue;
            }
            if report.expanded >= max_expansions {
                continue;
            }
            report.expanded += 1;
            let mut rule = vec![Vocab::BOS];
            for c in node.prefix.chars() {
                rule.push(
                    vocab
                        .char_id(c)
                        .ok_or(CoreError::Tokenize(TokenizeError::UnknownChar(c)))?,
                );
            }
            let mut probs = session.logits_for(&rule).to_vec();
            pagpass_nn::softmax_in_place(&mut probs);
            // <EOS> completes the password.
            if !node.prefix.is_empty() {
                let p_end = f64::from(probs[Vocab::EOS as usize]);
                if p_end > 0.0 {
                    heap.push(FreeNode {
                        lp: node.lp + p_end.ln(),
                        prefix: node.prefix.clone(),
                        complete: true,
                    });
                }
            }
            if node.prefix.chars().count() < max_len {
                for (id, &p) in probs.iter().enumerate() {
                    let Some(c) = char_of(vocab, id as TokenId) else {
                        continue;
                    };
                    let p = f64::from(p);
                    if p > 1e-9 {
                        let mut prefix = node.prefix.clone();
                        prefix.push(c);
                        heap.push(FreeNode {
                            lp: node.lp + p.ln(),
                            prefix,
                            complete: false,
                        });
                    }
                }
            }
        }
        Ok(report)
    }
}

fn char_of(vocab: &pagpass_tokenizer::Vocab, id: TokenId) -> Option<char> {
    match vocab.token_of(id) {
        Some(pagpass_tokenizer::Token::Char(c)) => Some(c),
        _ => None,
    }
}

#[derive(Debug, Clone, PartialEq)]
struct Node {
    lp: f64,
    prefix: String,
}

impl Eq for Node {}
impl PartialOrd for Node {
    fn partial_cmp(&self, other: &Node) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Node {
    fn cmp(&self, other: &Node) -> Ordering {
        self.lp
            .partial_cmp(&other.lp)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.prefix.cmp(&self.prefix))
    }
}

#[derive(Debug, Clone, PartialEq)]
struct FreeNode {
    lp: f64,
    prefix: String,
    complete: bool,
}

impl Eq for FreeNode {}
impl PartialOrd for FreeNode {
    fn partial_cmp(&self, other: &FreeNode) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for FreeNode {
    fn cmp(&self, other: &FreeNode) -> Ordering {
        self.lp
            .partial_cmp(&other.lp)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.prefix.cmp(&self.prefix))
            .then_with(|| self.complete.cmp(&other.complete))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TrainConfig;
    use pagpass_nn::GptConfig;
    use pagpass_tokenizer::VOCAB_SIZE;

    fn tiny(kind: ModelKind) -> PasswordModel {
        PasswordModel::new(
            kind,
            GptConfig {
                vocab_size: VOCAB_SIZE,
                ctx_len: 32,
                dim: 16,
                n_layers: 1,
                n_heads: 2,
            },
            7,
        )
    }

    #[test]
    fn guided_enumeration_is_descending_unique_and_conforming() {
        let model = tiny(ModelKind::PagPassGpt);
        let pattern: Pattern = "N2".parse().unwrap();
        let report = model.enumerate_guided(&pattern, 100, 10_000).unwrap();
        // N2 admits exactly 100 passwords.
        assert_eq!(report.passwords.len(), 100);
        assert!(report.log_probs.windows(2).all(|w| w[0] >= w[1] - 1e-9));
        let unique: std::collections::HashSet<&String> = report.passwords.iter().collect();
        assert_eq!(unique.len(), 100);
        for pw in &report.passwords {
            assert!(pattern.matches(pw));
        }
    }

    #[test]
    fn guided_enumeration_respects_the_expansion_budget() {
        let model = tiny(ModelKind::PagPassGpt);
        let pattern: Pattern = "L4".parse().unwrap();
        let report = model.enumerate_guided(&pattern, 1_000, 20).unwrap();
        assert!(report.expanded <= 20);
        assert!(report.passwords.len() < 1_000);
    }

    #[test]
    fn guided_enumeration_tracks_training() {
        let corpus: Vec<String> = std::iter::repeat_n("77".to_owned(), 60).collect();
        let mut model = tiny(ModelKind::PagPassGpt);
        model.train(
            &corpus,
            &[],
            &TrainConfig {
                epochs: 8,
                ..TrainConfig::quick()
            },
        );
        let pattern: Pattern = "N2".parse().unwrap();
        let report = model.enumerate_guided(&pattern, 3, 10_000).unwrap();
        assert_eq!(
            report.passwords[0], "77",
            "the memorized password enumerates first"
        );
    }

    #[test]
    fn free_enumeration_requires_passgpt() {
        let pag = tiny(ModelKind::PagPassGpt);
        assert!(matches!(
            pag.enumerate_free(5, 8, 100),
            Err(crate::CoreError::WrongKind { .. })
        ));
        let pass = tiny(ModelKind::PassGpt);
        let report = pass.enumerate_free(5, 6, 5_000).unwrap();
        assert!(report.log_probs.windows(2).all(|w| w[0] >= w[1] - 1e-9));
        let unique: std::collections::HashSet<&String> = report.passwords.iter().collect();
        assert_eq!(unique.len(), report.passwords.len());
    }
}
