use pagpass_nn::{sample_categorical, sample_masked, DecodeState, Gpt, Mat, QuantizedGpt, Rng};
use pagpass_tokenizer::{TokenId, Vocab};

/// A batched sampling request against a shared prompt.
pub(crate) struct SamplePlan<'a> {
    /// Prompt ids every sequence starts from.
    pub prefix: Vec<TokenId>,
    /// Maximum number of newly sampled tokens per sequence.
    pub max_new: usize,
    /// Softmax temperature (0 = greedy).
    pub temperature: f32,
    /// Token ids that must never be sampled.
    pub banned: Vec<TokenId>,
    /// Per-step constraint: `allowed_at(step)` returns the permitted ids
    /// for the `step`-th new token, or `None` for an unconstrained step.
    /// The callback hands out borrows of masks computed once up front —
    /// sampling steps must not allocate per step per batch.
    pub allowed_at: Box<dyn Fn(usize) -> Option<&'a [TokenId]> + Send + Sync + 'a>,
}

/// Samples `n` sequences under `plan`, in batches of at most `batch`,
/// priming each batch by feeding the prompt token by token.
///
/// Returns the newly generated ids per sequence, ending at (and including)
/// the first `<EOS>` if one is produced within the budget. Sequences are
/// independent; a finished sequence keeps feeding `<PAD>` until its batch
/// completes (other rows are unaffected because attention never crosses
/// batch rows).
///
/// # Panics
///
/// Panics if the prompt plus budget exceed the model's context window.
pub(crate) fn sample_batched(
    gpt: &Gpt,
    vocab: &Vocab,
    plan: &SamplePlan<'_>,
    n: usize,
    batch: usize,
    rng: &mut Rng,
) -> Vec<Vec<TokenId>> {
    sample_batched_primed(gpt, None, vocab, plan, n, batch, rng, &mut |b| {
        let mut state = gpt.begin_decode(b);
        let mut logits = Mat::zeros(0, 0);
        for &tok in &plan.prefix {
            logits = gpt.decode_step(&vec![tok; b], &mut state);
        }
        (state, logits)
    })
}

/// [`sample_batched`] with an explicit primer: `prime(b)` must return a
/// decode state advanced past the prompt for `b` rows plus the logits of
/// its final prompt token. The KV-cached inference session uses this to
/// broadcast an already-computed batch-1 prompt instead of re-feeding it
/// per row (bit-identical — see `crate::inference`).
///
/// When `quant` is present every decode step routes through the packed
/// int8 weights; the primer must have produced its state and logits under
/// the same kernel or the sampled stream would mix modes.
///
/// # Panics
///
/// Panics if the prompt plus budget exceed the model's context window.
#[allow(clippy::too_many_arguments)]
pub(crate) fn sample_batched_primed(
    gpt: &Gpt,
    quant: Option<&QuantizedGpt>,
    vocab: &Vocab,
    plan: &SamplePlan<'_>,
    n: usize,
    batch: usize,
    rng: &mut Rng,
    prime: &mut dyn FnMut(usize) -> (DecodeState, Mat),
) -> Vec<Vec<TokenId>> {
    let ctx = gpt.config().ctx_len;
    assert!(
        plan.prefix.len() + plan.max_new <= ctx,
        "prompt ({}) + budget ({}) exceeds the context window ({ctx})",
        plan.prefix.len(),
        plan.max_new
    );
    assert!(!plan.prefix.is_empty(), "prompt must be non-empty");
    let mut out = Vec::with_capacity(n);
    let mut remaining = n;
    while remaining > 0 {
        let b = remaining.min(batch);
        let (state, logits) = prime(b);
        out.extend(sample_one_batch(
            gpt, quant, vocab, plan, b, rng, state, logits,
        ));
        remaining -= b;
    }
    out
}

#[allow(clippy::too_many_arguments)]
fn sample_one_batch(
    gpt: &Gpt,
    quant: Option<&QuantizedGpt>,
    vocab: &Vocab,
    plan: &SamplePlan<'_>,
    b: usize,
    rng: &mut Rng,
    mut state: DecodeState,
    mut logits: Mat,
) -> Vec<Vec<TokenId>> {
    debug_assert_eq!(state.pos(), plan.prefix.len(), "state must be primed");
    let mut sequences: Vec<Vec<TokenId>> = vec![Vec::new(); b];
    let mut finished = vec![false; b];
    let mut next_tokens = vec![Vocab::PAD; b];
    for step in 0..plan.max_new {
        let allowed = (plan.allowed_at)(step);
        let mut all_done = true;
        for row in 0..b {
            if finished[row] {
                next_tokens[row] = Vocab::PAD;
                continue;
            }
            all_done = false;
            let mut row_logits = logits.row(row).to_vec();
            for &banned in &plan.banned {
                row_logits[banned as usize] = f32::NEG_INFINITY;
            }
            let id = match allowed {
                Some(set) => sample_masked(&mut row_logits, set, plan.temperature, rng) as TokenId,
                None => sample_categorical(&mut row_logits, plan.temperature, rng) as TokenId,
            };
            sequences[row].push(id);
            if id == Vocab::EOS {
                finished[row] = true;
            }
            next_tokens[row] = id;
        }
        if all_done || step + 1 == plan.max_new {
            break;
        }
        logits = gpt.decode_step_with(quant, &next_tokens, &mut state);
    }
    let _ = vocab; // vocabulary is part of the contract; ids map through it
    sequences
}

#[cfg(test)]
mod tests {
    use super::*;
    use pagpass_nn::GptConfig;
    use pagpass_tokenizer::{Tokenizer, VOCAB_SIZE};

    fn tiny_gpt() -> Gpt {
        Gpt::new(
            GptConfig {
                vocab_size: VOCAB_SIZE,
                ctx_len: 16,
                dim: 16,
                n_layers: 1,
                n_heads: 2,
            },
            &mut Rng::seed_from(1),
        )
    }

    #[test]
    fn produces_exactly_n_sequences_across_batches() {
        let gpt = tiny_gpt();
        let tok = Tokenizer::new();
        let plan = SamplePlan {
            prefix: vec![Vocab::BOS],
            max_new: 4,
            temperature: 1.0,
            banned: vec![],
            allowed_at: Box::new(|_| None),
        };
        let mut rng = Rng::seed_from(2);
        let out = sample_batched(&gpt, tok.vocab(), &plan, 7, 3, &mut rng);
        assert_eq!(out.len(), 7);
        assert!(out.iter().all(|s| s.len() <= 4 && !s.is_empty()));
    }

    #[test]
    fn banned_tokens_never_appear() {
        let gpt = tiny_gpt();
        let tok = Tokenizer::new();
        let banned = vec![Vocab::BOS, Vocab::PAD, Vocab::UNK];
        let plan = SamplePlan {
            prefix: vec![Vocab::BOS],
            max_new: 6,
            temperature: 1.0,
            banned: banned.clone(),
            allowed_at: Box::new(|_| None),
        };
        let mut rng = Rng::seed_from(3);
        for seq in sample_batched(&gpt, tok.vocab(), &plan, 40, 16, &mut rng) {
            for id in seq {
                assert!(!banned.contains(&id), "banned id {id} sampled");
            }
        }
    }

    #[test]
    fn constrained_steps_respect_the_mask() {
        let gpt = tiny_gpt();
        let tok = Tokenizer::new();
        let digits = tok
            .vocab()
            .class_char_ids(pagpass_patterns::CharClass::Digit);
        let plan = SamplePlan {
            prefix: vec![Vocab::BOS],
            max_new: 3,
            temperature: 1.0,
            banned: vec![],
            allowed_at: Box::new(|_| Some(&digits)),
        };
        let mut rng = Rng::seed_from(4);
        for seq in sample_batched(&gpt, tok.vocab(), &plan, 20, 8, &mut rng) {
            for id in seq {
                assert!(digits.contains(&id));
            }
        }
    }

    #[test]
    fn eos_terminates_a_sequence() {
        let gpt = tiny_gpt();
        let tok = Tokenizer::new();
        // Force EOS at step 1 for every row.
        let eos_mask = [Vocab::EOS];
        let plan = SamplePlan {
            prefix: vec![Vocab::BOS],
            max_new: 5,
            temperature: 1.0,
            banned: vec![],
            allowed_at: Box::new(|step| if step == 1 { Some(&eos_mask[..]) } else { None }),
        };
        let mut rng = Rng::seed_from(5);
        for seq in sample_batched(&gpt, tok.vocab(), &plan, 10, 4, &mut rng) {
            assert_eq!(seq.len(), 2);
            assert_eq!(seq[1], Vocab::EOS);
        }
    }

    #[test]
    #[should_panic(expected = "context window")]
    fn oversized_budget_panics() {
        let gpt = tiny_gpt();
        let tok = Tokenizer::new();
        let plan = SamplePlan {
            prefix: vec![Vocab::BOS],
            max_new: 99,
            temperature: 1.0,
            banned: vec![],
            allowed_at: Box::new(|_| None),
        };
        let _ = sample_batched(&gpt, tok.vocab(), &plan, 1, 1, &mut Rng::seed_from(0));
    }
}
