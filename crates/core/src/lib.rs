//! PagPassGPT and PassGPT: pattern-guided password guessing via GPT, plus
//! the D&C-GEN divide-and-conquer generation algorithm.
//!
//! This is the reproduction of the primary contribution of *PagPassGPT:
//! Pattern Guided Password Guessing via Generative Pretrained Transformer*
//! (DSN 2024). Two models share one GPT-2-style backbone from
//! [`pagpass_nn`]:
//!
//! * **PassGPT** (the state-of-the-art baseline, Rando et al. 2023) — a
//!   character-level LM over rules `<BOS> password <EOS>`. Guided
//!   generation *filters* candidate tokens to the character class the
//!   pattern demands at each position, which truncates words (paper
//!   Table III).
//! * **PagPassGPT** (the paper's model) — an LM over rules
//!   `<BOS> pattern <SEP> password <EOS>`. The pattern acts as *background
//!   knowledge*: guided generation primes the model with
//!   `<BOS> pattern <SEP>` and lets it complete the password with the
//!   pattern in context (Eq. 1), so both the pattern and the model's
//!   language knowledge shape every token.
//!
//! [`DcGen`] implements Algorithm 1: the guess budget is split across
//! patterns by their empirical prior, then recursively across next-token
//! extensions until each subtask's quota falls below a threshold; leaf
//! subtasks sample passwords under their (pattern, prefix) constraint.
//! Because subtasks are disjoint by construction, duplicates can only occur
//! inside a single leaf, which is what collapses the repeat rate (paper
//! Fig. 10).
//!
//! # Examples
//!
//! ```no_run
//! use pagpassgpt::{ModelKind, PasswordModel, TrainConfig};
//!
//! let passwords: Vec<String> = vec!["hello123".into(), "Pass123$".into()];
//! let mut model = PasswordModel::new(
//!     ModelKind::PagPassGpt,
//!     pagpass_nn::GptConfig::small(pagpass_tokenizer::VOCAB_SIZE),
//!     7,
//! );
//! model.train(&passwords, &[], &TrainConfig::quick());
//! let pattern = "L5N3".parse().unwrap();
//! let guesses = model.generate_guided(&pattern, 100, 1.0, 42);
//! assert_eq!(guesses.len(), 100);
//! ```

mod checkpoint;
mod control;
mod dcgen;
mod enumerate;
mod error;
mod generate;
mod inference;
mod journal;
mod kernel;
mod model;
mod sched;
mod serve;
mod trainer;

pub use checkpoint::{TrainCheckpoint, TrainProgress};
pub use control::{CancelToken, Deadline, FaultPlan};
pub use dcgen::{DcGen, DcGenConfig, DcGenOptions, DcGenReport, FailedTask, PasswordSink};
pub use enumerate::EnumerationReport;
pub use error::CoreError;
pub use inference::{InferenceSession, RulePrefix, FORWARD_MS_HISTOGRAM, PREFIX_REUSE_COUNTER};
pub use journal::{DcGenJournal, JournalTask};
pub use kernel::KernelChoice;
pub use model::{ModelKind, PasswordModel};
pub use sched::SchedulerKind;
pub use serve::{
    run_with_listener, run_with_listeners, ScoreOutcome, ServeConfig, ServeReport, ShedReason,
};
pub use trainer::{CheckpointPolicy, TrainConfig, TrainOptions, TrainingReport};
