use std::path::Path;

use pagpass_nn::{Gpt, GptConfig, Rng};
use pagpass_patterns::Pattern;
use pagpass_tokenizer::{TokenId, Tokenizer, Vocab};

use crate::generate::{sample_batched, SamplePlan};
use crate::inference::{InferenceSession, RulePrefix};
use crate::trainer::{run_training, run_training_with, TrainConfig, TrainOptions, TrainingReport};
use crate::CoreError;

/// Which rule encoding a [`PasswordModel`] is trained on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelKind {
    /// Rando et al. 2023 baseline: `<BOS> password <EOS>`; guided
    /// generation filters tokens to the pattern's character classes.
    PassGpt,
    /// The paper's model: `<BOS> pattern <SEP> password <EOS>`; guided
    /// generation conditions on the pattern prefix (Eq. 1).
    PagPassGpt,
}

impl ModelKind {
    /// Display name matching the paper's tables.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ModelKind::PassGpt => "PassGPT",
            ModelKind::PagPassGpt => "PagPassGPT",
        }
    }
}

impl std::fmt::Display for ModelKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A GPT-backed password guessing model — either PassGPT or PagPassGPT,
/// sharing the same backbone, vocabulary, and training loop so comparisons
/// isolate the paper's contribution (pattern conditioning).
///
/// # Examples
///
/// Construction and free generation (untrained models produce noise but
/// exercise the full pipeline):
///
/// ```
/// use pagpassgpt::{ModelKind, PasswordModel};
/// use pagpass_nn::GptConfig;
/// use pagpass_tokenizer::VOCAB_SIZE;
///
/// let model = PasswordModel::new(ModelKind::PassGpt, GptConfig::tiny(VOCAB_SIZE), 1);
/// let guesses = model.generate_free(8, 1.0, 99);
/// assert_eq!(guesses.len(), 8);
/// ```
#[derive(Debug, Clone)]
pub struct PasswordModel {
    kind: ModelKind,
    gpt: Gpt,
    tokenizer: Tokenizer,
}

impl PasswordModel {
    /// Batch width used for sampling.
    pub(crate) const GEN_BATCH: usize = 128;

    /// Initializes an untrained model.
    ///
    /// # Panics
    ///
    /// Panics if `config.vocab_size` differs from the tokenizer's
    /// vocabulary or `dim % n_heads != 0`.
    #[must_use]
    pub fn new(kind: ModelKind, config: GptConfig, seed: u64) -> PasswordModel {
        assert_eq!(
            config.vocab_size,
            pagpass_tokenizer::VOCAB_SIZE,
            "model vocabulary must match the tokenizer"
        );
        PasswordModel {
            kind,
            gpt: Gpt::new(config, &mut Rng::seed_from(seed)),
            tokenizer: Tokenizer::new(),
        }
    }

    /// The rule encoding this model uses.
    #[must_use]
    pub fn kind(&self) -> ModelKind {
        self.kind
    }

    /// The underlying transformer.
    #[must_use]
    pub fn gpt(&self) -> &Gpt {
        &self.gpt
    }

    /// The tokenizer (shared fixed vocabulary).
    #[must_use]
    pub fn tokenizer(&self) -> &Tokenizer {
        &self.tokenizer
    }

    /// Encodes one training rule according to the model kind.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Tokenize`] for passwords outside the alphabet.
    pub fn encode(&self, password: &str) -> Result<Vec<TokenId>, CoreError> {
        Ok(match self.kind {
            ModelKind::PassGpt => self.tokenizer.encode_password(password)?,
            ModelKind::PagPassGpt => self.tokenizer.encode_training(password)?,
        })
    }

    /// Trains on `train` with optional `validation` monitoring; returns the
    /// per-epoch loss history. Passwords that fail to encode are skipped
    /// (mirroring the paper's cleaning, which removes them up front).
    pub fn train(
        &mut self,
        train: &[String],
        validation: &[String],
        config: &TrainConfig,
    ) -> TrainingReport {
        let encode = |pw: &String| match self.kind {
            ModelKind::PassGpt => self.tokenizer.encode_password(pw).ok(),
            ModelKind::PagPassGpt => self.tokenizer.encode_training(pw).ok(),
        };
        let train_rules: Vec<Vec<TokenId>> = train.iter().filter_map(encode).collect();
        let val_rules: Vec<Vec<TokenId>> = validation.iter().filter_map(encode).collect();
        run_training(&mut self.gpt, &train_rules, &val_rules, config)
    }

    /// [`PasswordModel::train`] with runtime options: periodic
    /// checkpointing, `--resume`, cooperative cancellation, and fault
    /// injection.
    ///
    /// # Errors
    ///
    /// Returns an error only when `opts.resume` is set and an existing
    /// checkpoint file cannot be restored; failed checkpoint *writes* are
    /// counted on the report instead.
    pub fn train_with(
        &mut self,
        train: &[String],
        validation: &[String],
        config: &TrainConfig,
        opts: &TrainOptions<'_>,
    ) -> Result<TrainingReport, CoreError> {
        let encode = |pw: &String| match self.kind {
            ModelKind::PassGpt => self.tokenizer.encode_password(pw).ok(),
            ModelKind::PagPassGpt => self.tokenizer.encode_training(pw).ok(),
        };
        let train_rules: Vec<Vec<TokenId>> = train.iter().filter_map(encode).collect();
        let val_rules: Vec<Vec<TokenId>> = validation.iter().filter_map(encode).collect();
        run_training_with(&mut self.gpt, &train_rules, &val_rules, config, opts)
    }

    /// Trawling-attack generation: sample `n` passwords from `<BOS>` alone.
    ///
    /// For PagPassGPT this is the paper's first trawling mode — the model
    /// generates the pattern *and* the password itself; for PassGPT it
    /// generates the password directly.
    #[must_use]
    pub fn generate_free(&self, n: usize, temperature: f32, seed: u64) -> Vec<String> {
        let vocab = self.tokenizer.vocab();
        let max_new = self.gpt.config().ctx_len - 1;
        let banned = self.banned_ids();
        let plan = SamplePlan {
            prefix: RulePrefix::free().into_ids(),
            max_new,
            temperature,
            banned,
            allowed_at: Box::new(|_| None),
        };
        let mut rng = Rng::seed_from(seed);
        let sequences = sample_batched(&self.gpt, vocab, &plan, n, Self::GEN_BATCH, &mut rng);
        sequences
            .into_iter()
            .map(|ids| self.decode_generated(&ids))
            .collect()
    }

    /// Pattern-guided generation of `n` passwords (paper §IV-C).
    ///
    /// * PagPassGPT: primes with `<BOS> pattern <SEP>` and samples freely —
    ///   the pattern is *context*, not a hard filter.
    /// * PassGPT: starts from `<BOS>` and masks each step to the character
    ///   class the pattern requires at that position — the paper's
    ///   filtering approach, which causes word truncation.
    #[must_use]
    pub fn generate_guided(
        &self,
        pattern: &Pattern,
        n: usize,
        temperature: f32,
        seed: u64,
    ) -> Vec<String> {
        let vocab = self.tokenizer.vocab();
        let mut rng = Rng::seed_from(seed);
        // PassGPT filters: one mask per position plus a final <EOS> mask,
        // computed once up front. PagPassGPT samples unmasked (the pattern
        // is context, not a filter), flagged by an empty mask table.
        let masks: Vec<Vec<TokenId>> = match self.kind {
            ModelKind::PagPassGpt => Vec::new(),
            ModelKind::PassGpt => {
                let mut masks: Vec<Vec<TokenId>> = pattern
                    .position_classes()
                    .map(|class| vocab.class_char_ids(class))
                    .collect();
                masks.push(vec![Vocab::EOS]);
                masks
            }
        };
        let plan = SamplePlan {
            prefix: RulePrefix::guided(&self.tokenizer, self.kind, pattern).into_ids(),
            // chars + <EOS>
            max_new: pattern.char_len() + 1,
            temperature,
            banned: self.banned_ids(),
            allowed_at: if masks.is_empty() {
                Box::new(|_| None)
            } else {
                Box::new(|step| masks.get(step).map(Vec::as_slice))
            },
        };
        let sequences = sample_batched(&self.gpt, vocab, &plan, n, Self::GEN_BATCH, &mut rng);
        sequences
            .into_iter()
            .map(|ids| self.decode_generated(&ids))
            .collect()
    }

    /// Guided generation that *additionally* rejects non-conforming outputs
    /// is intentionally not provided: the paper evaluates PagPassGPT's raw
    /// conditioned output, and its conformity is part of what Fig. 8/9
    /// measure.
    ///
    /// Continuation sampling for a D&C-GEN leaf: `n` passwords conforming
    /// to `pattern` that start with `prefix_chars` (may be empty). Each
    /// remaining position is masked to its pattern class, so all outputs
    /// conform (D&C-GEN filters every division by the pattern requirement,
    /// paper Fig. 7).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::PrefixTooLong`] if `prefix_chars` is longer
    /// than the pattern and [`CoreError::Tokenize`] if it contains
    /// characters outside the vocabulary.
    pub fn generate_leaf(
        &self,
        pattern: &Pattern,
        prefix_chars: &str,
        n: usize,
        temperature: f32,
        rng: &mut Rng,
    ) -> Result<Vec<String>, CoreError> {
        // A transient session: still KV-primes the prompt once per leaf
        // (instead of once per batch row); D&C-GEN workers hold a
        // long-lived session instead to also reuse across tasks.
        InferenceSession::new(self).generate_leaf(pattern, prefix_chars, n, temperature, rng)
    }

    /// Next-token distribution over character ids given a pattern and a
    /// password prefix — the quantity D&C-GEN splits tasks with
    /// (Algorithm 1, line 15).
    ///
    /// Returns `(char_ids, probabilities)` restricted to the class the
    /// pattern requires at the next position, renormalized.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::PrefixTooLong`] if the prefix already covers
    /// the whole pattern and [`CoreError::Tokenize`] for prefix characters
    /// outside the vocabulary.
    pub fn next_char_distribution(
        &self,
        pattern: &Pattern,
        prefix_chars: &str,
    ) -> Result<(Vec<TokenId>, Vec<f64>), CoreError> {
        InferenceSession::new(self).next_char_distribution(pattern, prefix_chars)
    }

    /// Natural-log probability the model assigns to `password` — the
    /// product of conditional token probabilities over the password's rule
    /// (for PagPassGPT this includes the pattern section, matching the
    /// joint in paper Eq. 1).
    ///
    /// Useful as a guessability score: more negative means harder to
    /// guess. See `examples/strength_meter.rs`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Tokenize`] for passwords outside the alphabet.
    pub fn log_probability(&self, password: &str) -> Result<f64, CoreError> {
        InferenceSession::new(self).log_probability(password)
    }

    /// Saves backbone weights to `path` (kind is the caller's to track; the
    /// experiment harness stores it in the file name).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn save(&mut self, path: impl AsRef<Path>) -> Result<(), CoreError> {
        self.gpt.save(path)?;
        Ok(())
    }

    /// Loads backbone weights saved by [`save`](Self::save).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Load`] on malformed files and
    /// [`CoreError::VocabMismatch`] when the file is valid but was trained
    /// against a different vocabulary — without this check the mismatch
    /// would only surface as a matrix-shape panic once generation feeds
    /// tokenizer ids into the model.
    pub fn load(kind: ModelKind, path: impl AsRef<Path>) -> Result<PasswordModel, CoreError> {
        let gpt = Gpt::load(path)?;
        let tokenizer = Tokenizer::new();
        let file_vocab = gpt.config().vocab_size;
        let expected_vocab = tokenizer.vocab().len();
        if file_vocab != expected_vocab {
            return Err(CoreError::VocabMismatch {
                file_vocab,
                expected_vocab,
            });
        }
        Ok(PasswordModel {
            kind,
            gpt,
            tokenizer,
        })
    }

    /// Tokens never sampled: control tokens that only structure rules, and
    /// — for PassGPT, whose training rules contain no pattern section —
    /// the pattern tokens and `<SEP>`.
    pub(crate) fn banned_ids(&self) -> Vec<TokenId> {
        let vocab = self.tokenizer.vocab();
        let mut banned = vec![Vocab::BOS, Vocab::UNK, Vocab::PAD];
        if self.kind == ModelKind::PassGpt {
            banned.push(Vocab::SEP);
            banned.extend(
                vocab
                    .iter()
                    .filter(|(id, _)| vocab.is_pattern(*id))
                    .map(|(id, _)| id),
            );
        }
        banned
    }

    /// Decodes newly generated ids (everything after the prompt) into a
    /// password string according to the model kind.
    fn decode_generated(&self, ids: &[TokenId]) -> String {
        match self.kind {
            ModelKind::PassGpt => self.tokenizer.decode_password(ids).unwrap_or_default(),
            ModelKind::PagPassGpt => {
                // Free mode generates "pattern <SEP> password"; guided mode
                // generates just the password. decode_rule handles the
                // former; fall back to char decoding for the latter.
                match self.tokenizer.decode_rule(ids) {
                    Ok(rule) => rule.password,
                    Err(_) => self.decode_chars(ids),
                }
            }
        }
    }

    /// Plain character decoding up to `<EOS>`.
    pub(crate) fn decode_chars(&self, ids: &[TokenId]) -> String {
        self.tokenizer.decode_password(ids).unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pagpass_tokenizer::VOCAB_SIZE;

    fn tiny(kind: ModelKind) -> PasswordModel {
        PasswordModel::new(
            kind,
            GptConfig {
                vocab_size: VOCAB_SIZE,
                ctx_len: 32,
                dim: 16,
                n_layers: 1,
                n_heads: 2,
            },
            3,
        )
    }

    #[test]
    fn kinds_display() {
        assert_eq!(ModelKind::PassGpt.to_string(), "PassGPT");
        assert_eq!(ModelKind::PagPassGpt.to_string(), "PagPassGPT");
    }

    #[test]
    fn encode_respects_kind() {
        let pag = tiny(ModelKind::PagPassGpt);
        let pass = tiny(ModelKind::PassGpt);
        let rule_pag = pag.encode("abc12").unwrap();
        let rule_pass = pass.encode("abc12").unwrap();
        assert!(
            rule_pag.len() > rule_pass.len(),
            "PagPassGPT rules carry the pattern"
        );
        assert!(rule_pag.contains(&Vocab::SEP));
        assert!(!rule_pass.contains(&Vocab::SEP));
    }

    #[test]
    fn free_generation_yields_n_outputs() {
        for kind in [ModelKind::PassGpt, ModelKind::PagPassGpt] {
            let model = tiny(kind);
            let out = model.generate_free(10, 1.0, 5);
            assert_eq!(out.len(), 10);
        }
    }

    #[test]
    fn free_generation_is_deterministic_in_seed() {
        let model = tiny(ModelKind::PagPassGpt);
        assert_eq!(
            model.generate_free(6, 1.0, 8),
            model.generate_free(6, 1.0, 8)
        );
        assert_ne!(
            model.generate_free(64, 1.0, 8),
            model.generate_free(64, 1.0, 9)
        );
    }

    #[test]
    fn passgpt_guided_always_conforms() {
        let model = tiny(ModelKind::PassGpt);
        let pattern: Pattern = "L3N2S1".parse().unwrap();
        for pw in model.generate_guided(&pattern, 20, 1.0, 1) {
            assert!(
                pattern.matches(&pw),
                "PassGPT filtering must force conformity: {pw:?}"
            );
        }
    }

    #[test]
    fn pagpassgpt_guided_yields_passwords_of_bounded_length() {
        let model = tiny(ModelKind::PagPassGpt);
        let pattern: Pattern = "L3N2".parse().unwrap();
        for pw in model.generate_guided(&pattern, 20, 1.0, 1) {
            // Untrained models wander, but the budget caps the length.
            assert!(pw.chars().count() <= pattern.char_len() + 1);
        }
    }

    #[test]
    fn leaf_generation_conforms_and_keeps_prefix() {
        let model = tiny(ModelKind::PagPassGpt);
        let pattern: Pattern = "L4N2".parse().unwrap();
        let mut rng = Rng::seed_from(2);
        for pw in model
            .generate_leaf(&pattern, "ab", 15, 1.0, &mut rng)
            .unwrap()
        {
            assert!(pw.starts_with("ab"), "{pw}");
            assert!(pattern.matches(&pw), "{pw}");
        }
    }

    #[test]
    fn next_char_distribution_normalizes_and_respects_class() {
        let model = tiny(ModelKind::PagPassGpt);
        let pattern: Pattern = "L1N1".parse().unwrap();
        let (ids, probs) = model.next_char_distribution(&pattern, "a").unwrap();
        assert_eq!(ids.len(), 10, "next position is a digit");
        assert!((probs.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(probs.iter().all(|&p| p >= 0.0));
    }

    #[test]
    fn training_reduces_loss_and_improves_conformity() {
        let corpus: Vec<String> = (0..60).map(|i| format!("pass{i:02}")).collect();
        let mut model = tiny(ModelKind::PagPassGpt);
        let report = model.train(&corpus, &corpus[..10], &TrainConfig::quick());
        assert!(report.epoch_losses.len() >= 2);
        assert!(
            report.epoch_losses.last().unwrap() < report.epoch_losses.first().unwrap(),
            "loss history {:?}",
            report.epoch_losses
        );
    }

    #[test]
    fn log_probability_orders_trained_passwords_above_noise() {
        let corpus: Vec<String> = (0..40).map(|i| format!("abcd{i:02}")).collect();
        let mut model = tiny(ModelKind::PagPassGpt);
        model.train(
            &corpus,
            &[],
            &TrainConfig {
                epochs: 6,
                ..TrainConfig::quick()
            },
        );
        let trained = model.log_probability("abcd07").unwrap();
        let noise = model.log_probability("Zq~9!x").unwrap();
        assert!(trained > noise, "trained {trained} vs noise {noise}");
        assert!(trained < 0.0);
        assert!(model.log_probability("has space").is_err());
    }

    #[test]
    fn save_load_roundtrip() {
        let dir = std::env::temp_dir().join("pagpass_core_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.pagnn");
        let mut model = tiny(ModelKind::PagPassGpt);
        model.save(&path).unwrap();
        let loaded = PasswordModel::load(ModelKind::PagPassGpt, &path).unwrap();
        assert_eq!(
            model.generate_free(5, 1.0, 3),
            loaded.generate_free(5, 1.0, 3)
        );
        std::fs::remove_file(path).ok();
    }
}
