//! Unified inference layer: rule-prefix construction and KV-cached
//! incremental decoding shared by every generation path.
//!
//! Two pieces live here:
//!
//! * [`RulePrefix`] — the single builder for the `<BOS> [pattern <SEP>]
//!   [password chars]` prompt that free, guided, leaf, and distribution
//!   queries all start from. Before this module each call site re-derived
//!   the prompt by hand (and panicked on out-of-vocabulary characters);
//!   now there is one implementation and it returns [`CoreError`]s.
//! * [`InferenceSession`] — a stateful wrapper around one
//!   [`DecodeState`](pagpass_nn::Gpt::begin_decode) that answers
//!   consecutive queries by *seeking*: it truncates the KV cache back to
//!   the longest common prefix with the previous query and feeds only the
//!   suffix. D&C-GEN's task tree visits prefixes in breadth-first order,
//!   so consecutive tasks usually share all but one character — a worker
//!   threading one session through its tasks pays O(depth) forwards per
//!   lineage instead of the O(depth²) that per-task full forwards cost.
//!
//! # Exactness
//!
//! Seeking is *bit-exact*, not approximate: a cached K/V row at position
//! `p` is a pure function of the token and position embeddings at `p` and
//! the rows before it, so truncating to a shared prefix and re-feeding a
//! different suffix produces exactly the floats a fresh decode of the new
//! sequence would. The same argument covers
//! [`DecodeState::broadcast`](pagpass_nn::KvCache::broadcast): attention
//! rows never interact across a batch, so replicating a batch-1 prefix
//! cache equals feeding the prefix to every row. The cached-vs-uncached
//! tests in this module assert `==` on logits, not an epsilon.

use pagpass_nn::{softmax_in_place, DecodeState, Mat, Rng};
use pagpass_patterns::Pattern;
use pagpass_telemetry::{Counter, Telemetry};
use pagpass_tokenizer::{TokenId, TokenizeError, Tokenizer, Vocab};

use crate::generate::{sample_batched_primed, SamplePlan};
use crate::model::{ModelKind, PasswordModel};
use crate::CoreError;

/// Telemetry counter fed by every session: KV positions served from the
/// cache instead of recomputed. The journal's `prefix_cache_hits` stat and
/// the paired bench both read this.
pub const PREFIX_REUSE_COUNTER: &str = "dcgen.prefix_reuse_tokens";

/// The token prompt a generation query starts from, according to the model
/// kind: `<BOS>` alone, `<BOS> pattern <SEP>` for pattern-conditioned
/// PagPassGPT queries, optionally extended with already-fixed password
/// characters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RulePrefix {
    ids: Vec<TokenId>,
}

impl RulePrefix {
    /// Unconditioned prompt: `<BOS>` alone (trawling generation, and the
    /// base for PassGPT's filter-style guided generation).
    #[must_use]
    pub fn free() -> RulePrefix {
        RulePrefix {
            ids: vec![Vocab::BOS],
        }
    }

    /// Pattern-conditioned prompt. PagPassGPT primes with
    /// `<BOS> pattern <SEP>` (the pattern is context, paper Eq. 1);
    /// PassGPT has no pattern section in its rules, so its guided prompt
    /// is `<BOS>` and the pattern is enforced by per-step masks instead.
    #[must_use]
    pub fn guided(tokenizer: &Tokenizer, kind: ModelKind, pattern: &Pattern) -> RulePrefix {
        match kind {
            ModelKind::PagPassGpt => RulePrefix {
                ids: tokenizer.encode_generation_prefix(pattern),
            },
            ModelKind::PassGpt => RulePrefix::free(),
        }
    }

    /// [`guided`](Self::guided) extended with password characters already
    /// fixed by the caller (a D&C-GEN task prefix).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Tokenize`] if a prefix character is outside
    /// the vocabulary.
    pub fn constrained(
        tokenizer: &Tokenizer,
        kind: ModelKind,
        pattern: &Pattern,
        prefix_chars: &str,
    ) -> Result<RulePrefix, CoreError> {
        let mut base = RulePrefix::guided(tokenizer, kind, pattern);
        let vocab = tokenizer.vocab();
        for c in prefix_chars.chars() {
            base.ids
                .push(vocab.char_id(c).ok_or(TokenizeError::UnknownChar(c))?);
        }
        Ok(base)
    }

    /// The prompt token ids.
    #[must_use]
    pub fn ids(&self) -> &[TokenId] {
        &self.ids
    }

    /// Number of prompt tokens.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// A rule prefix always contains at least `<BOS>`.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Consumes the builder, yielding the prompt ids.
    #[must_use]
    pub fn into_ids(self) -> Vec<TokenId> {
        self.ids
    }
}

/// A KV-cached decoding session over one model.
///
/// The session owns a batch-1 [`DecodeState`] plus the token sequence it
/// currently holds. Every query seeks to its target prompt — truncating
/// back to the longest common prefix and feeding only the divergent
/// suffix — then answers from the resulting logits. Queries through a
/// session return bit-identical results to stateless full forwards (see
/// the module docs), they just skip recomputing shared prefixes.
///
/// Sessions are cheap relative to the model but hold `n_layers` KV caches
/// of `ctx_len` positions; D&C-GEN creates one per worker thread and
/// threads it through every split and leaf that worker executes.
pub struct InferenceSession<'m> {
    model: &'m PasswordModel,
    state: DecodeState,
    /// Tokens currently in the cache; `state.pos() == tokens.len()`.
    tokens: Vec<TokenId>,
    /// Logits after the last fed token (empty until the first feed).
    last_logits: Vec<f32>,
    reuse_counter: Counter,
    reused: u64,
    computed: u64,
}

impl std::fmt::Debug for InferenceSession<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("InferenceSession")
            .field("cached", &self.tokens.len())
            .field("reused", &self.reused)
            .field("computed", &self.computed)
            .finish()
    }
}

impl<'m> InferenceSession<'m> {
    /// Opens a session with no telemetry (counts into the silent disabled
    /// registry).
    #[must_use]
    pub fn new(model: &'m PasswordModel) -> InferenceSession<'m> {
        InferenceSession::with_telemetry(model, Telemetry::disabled())
    }

    /// Opens a session whose cache hits feed `tel`'s
    /// [`PREFIX_REUSE_COUNTER`].
    #[must_use]
    pub fn with_telemetry(model: &'m PasswordModel, tel: &Telemetry) -> InferenceSession<'m> {
        InferenceSession {
            model,
            state: model.gpt().begin_decode(1),
            tokens: Vec::new(),
            last_logits: Vec::new(),
            reuse_counter: tel.counter(PREFIX_REUSE_COUNTER),
            reused: 0,
            computed: 0,
        }
    }

    /// Number of tokens currently cached.
    #[must_use]
    pub fn cached_len(&self) -> usize {
        self.tokens.len()
    }

    /// KV positions this session served from cache instead of recomputing.
    #[must_use]
    pub fn reused_tokens(&self) -> u64 {
        self.reused
    }

    /// Token forwards this session actually computed.
    #[must_use]
    pub fn computed_tokens(&self) -> u64 {
        self.computed
    }

    /// An independent copy of this session (shared KV prefix, divergent
    /// futures); the fork starts with fresh reuse statistics but feeds the
    /// same telemetry counter.
    #[must_use]
    pub fn fork(&self) -> InferenceSession<'m> {
        InferenceSession {
            model: self.model,
            state: self.state.fork(),
            tokens: self.tokens.clone(),
            last_logits: self.last_logits.clone(),
            reuse_counter: self.reuse_counter.clone(),
            reused: 0,
            computed: 0,
        }
    }

    /// Drops all cached state; the next query recomputes its prompt from
    /// scratch. (Used to measure the uncached baseline.)
    pub fn reset(&mut self) {
        self.state.clear();
        self.tokens.clear();
        self.last_logits.clear();
    }

    /// Feeds one token and records its logits.
    fn feed(&mut self, tok: TokenId) {
        let logits = self.model.gpt().decode_step(&[tok], &mut self.state);
        self.last_logits.clear();
        self.last_logits.extend_from_slice(logits.row(0));
        self.tokens.push(tok);
        self.computed += 1;
    }

    /// Moves the session to exactly `target`: truncates back to the
    /// longest common prefix with the cached tokens and feeds the rest.
    /// Afterwards `last_logits` holds the next-token logits for `target`.
    fn seek(&mut self, target: &[TokenId]) {
        debug_assert!(!target.is_empty(), "rule prefixes always carry <BOS>");
        let lcp = self
            .tokens
            .iter()
            .zip(target)
            .take_while(|(a, b)| a == b)
            .count();
        let keep = if lcp == target.len() && self.tokens.len() == target.len() {
            // Exact hit: the cached logits already answer this query.
            lcp
        } else {
            // Re-feed at least the final token so `last_logits` matches
            // the target; everything before the divergence is kept.
            lcp.min(target.len() - 1)
        };
        if keep < self.tokens.len() {
            self.state.truncate_to(keep);
            self.tokens.truncate(keep);
        }
        self.reused += keep as u64;
        self.reuse_counter.add(keep as u64);
        for &tok in &target[keep..] {
            self.feed(tok);
        }
    }

    /// Next-token logits for `target`, reusing the cached prefix.
    pub(crate) fn logits_for(&mut self, target: &[TokenId]) -> &[f32] {
        self.seek(target);
        &self.last_logits
    }

    /// Next-token distribution over character ids given a pattern and a
    /// password prefix — the quantity D&C-GEN splits tasks with
    /// (Algorithm 1, line 15), restricted to the class the pattern
    /// requires at the next position and renormalized.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::PrefixTooLong`] when the prefix already covers
    /// the whole pattern and [`CoreError::Tokenize`] for prefix characters
    /// outside the vocabulary.
    pub fn next_char_distribution(
        &mut self,
        pattern: &Pattern,
        prefix_chars: &str,
    ) -> Result<(Vec<TokenId>, Vec<f64>), CoreError> {
        let model = self.model;
        let vocab = model.tokenizer().vocab();
        let pos = prefix_chars.chars().count();
        let class = pattern.class_at(pos).ok_or(CoreError::PrefixTooLong {
            prefix_len: pos,
            pattern_len: pattern.char_len(),
        })?;
        let allowed = vocab.class_char_ids(class);
        let prompt =
            RulePrefix::constrained(model.tokenizer(), model.kind(), pattern, prefix_chars)?;
        self.seek(prompt.ids());
        let logits = &self.last_logits;
        let mut weights: Vec<f64> = allowed
            .iter()
            .map(|&id| f64::from(logits[id as usize]))
            .collect();
        let max = weights.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let mut sum = 0.0;
        for w in &mut weights {
            *w = (*w - max).exp();
            sum += *w;
        }
        for w in &mut weights {
            *w /= sum;
        }
        Ok((allowed, weights))
    }

    /// Continuation sampling for a D&C-GEN leaf: `n` passwords conforming
    /// to `pattern` that start with `prefix_chars`. The session advances
    /// its batch-1 cache to the leaf's prompt once, then every sampling
    /// batch is primed by broadcasting that cache — the prompt is never
    /// recomputed per batch row.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::PrefixTooLong`] when the prefix is longer than
    /// the pattern and [`CoreError::Tokenize`] for prefix characters
    /// outside the vocabulary.
    pub fn generate_leaf(
        &mut self,
        pattern: &Pattern,
        prefix_chars: &str,
        n: usize,
        temperature: f32,
        rng: &mut Rng,
    ) -> Result<Vec<String>, CoreError> {
        let model = self.model;
        let vocab = model.tokenizer().vocab();
        let done = prefix_chars.chars().count();
        let total = pattern.char_len();
        if done > total {
            return Err(CoreError::PrefixTooLong {
                prefix_len: done,
                pattern_len: total,
            });
        }
        // Masks are computed once per leaf; the plan callback hands out
        // borrows, so sampling steps allocate nothing for them.
        let masks: Vec<Vec<TokenId>> = pattern
            .position_classes()
            .skip(done)
            .map(|class| vocab.class_char_ids(class))
            .collect();
        let prompt =
            RulePrefix::constrained(model.tokenizer(), model.kind(), pattern, prefix_chars)?;
        self.seek(prompt.ids());
        let plan = SamplePlan {
            prefix: prompt.ids().to_vec(),
            max_new: total - done,
            temperature,
            banned: model.banned_ids(),
            allowed_at: Box::new(|step| masks.get(step).map(Vec::as_slice)),
        };
        let sequences = sample_batched_primed(
            model.gpt(),
            vocab,
            &plan,
            n,
            PasswordModel::GEN_BATCH,
            rng,
            &mut |b| {
                // Every batch row starts from the cached prompt: count the
                // row-steps the broadcast saved.
                let hits = (self.state.pos() * b) as u64;
                self.reused += hits;
                self.reuse_counter.add(hits);
                (self.state.broadcast(b), replicate_row(&self.last_logits, b))
            },
        );
        Ok(sequences
            .into_iter()
            .map(|ids| {
                let mut pw = prefix_chars.to_owned();
                pw.push_str(&model.decode_chars(&ids));
                pw
            })
            .collect())
    }

    /// Natural-log probability the model assigns to `password` (the
    /// product of conditional token probabilities over its full rule).
    /// Scoring needs logits at *every* position, so it always recomputes;
    /// the session is reset first.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Tokenize`] for passwords outside the alphabet.
    pub fn log_probability(&mut self, password: &str) -> Result<f64, CoreError> {
        let rule = self.model.encode(password)?;
        self.reset();
        let mut lp = 0.0f64;
        for (i, &tok) in rule.iter().enumerate() {
            if i > 0 {
                let mut probs = self.last_logits.clone();
                softmax_in_place(&mut probs);
                lp += f64::from(probs[tok as usize].max(1e-20)).ln();
            }
            self.feed(tok);
        }
        Ok(lp)
    }
}

/// Replicates one logits row across `b` batch rows.
fn replicate_row(row: &[f32], b: usize) -> Mat {
    let mut data = Vec::with_capacity(row.len() * b);
    for _ in 0..b {
        data.extend_from_slice(row);
    }
    Mat::from_rows(b, row.len(), data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pagpass_nn::GptConfig;
    use pagpass_tokenizer::VOCAB_SIZE;

    fn tiny(kind: ModelKind) -> PasswordModel {
        PasswordModel::new(
            kind,
            GptConfig {
                vocab_size: VOCAB_SIZE,
                ctx_len: 32,
                dim: 16,
                n_layers: 1,
                n_heads: 2,
            },
            3,
        )
    }

    #[test]
    fn rule_prefix_shapes_per_kind() {
        let tok = Tokenizer::new();
        let pattern: Pattern = "L3N2".parse().unwrap();
        assert_eq!(RulePrefix::free().ids(), &[Vocab::BOS]);
        let pag = RulePrefix::guided(&tok, ModelKind::PagPassGpt, &pattern);
        assert_eq!(pag.ids(), &tok.encode_generation_prefix(&pattern)[..]);
        let pass = RulePrefix::guided(&tok, ModelKind::PassGpt, &pattern);
        assert_eq!(pass.ids(), &[Vocab::BOS]);
        let ext = RulePrefix::constrained(&tok, ModelKind::PagPassGpt, &pattern, "ab").unwrap();
        assert_eq!(ext.len(), pag.len() + 2);
        assert!(!ext.is_empty());
    }

    #[test]
    fn rule_prefix_rejects_unknown_chars() {
        let tok = Tokenizer::new();
        let pattern: Pattern = "L3".parse().unwrap();
        let err = RulePrefix::constrained(&tok, ModelKind::PagPassGpt, &pattern, "a\u{1f600}");
        assert!(matches!(err, Err(CoreError::Tokenize(_))));
    }

    #[test]
    fn session_distribution_matches_full_forward_on_random_prefixes() {
        // The tentpole equivalence guarantee: a session answering queries
        // for many different prefixes — hitting truncate/reuse paths in
        // every order — returns *bit-identical* distributions to fresh
        // full forwards.
        let model = tiny(ModelKind::PagPassGpt);
        let pattern: Pattern = "L3N2S1".parse().unwrap();
        let mut session = InferenceSession::new(&model);
        let mut rng = Rng::seed_from(11);
        let letters = "abcdefghijklmnopqrstuvwxyz";
        let digits = "0123456789";
        for trial in 0..40 {
            // Random prefix of random length (0..=5) conforming to the
            // pattern's classes.
            let len = rng.below(6);
            let mut prefix = String::new();
            for i in 0..len {
                let pool = if i < 3 { letters } else { digits };
                let k = rng.below(pool.len());
                prefix.push(pool.as_bytes()[k] as char);
            }
            let (ids, probs) = session.next_char_distribution(&pattern, &prefix).unwrap();
            let (ref_ids, ref_probs) = reference_distribution(&model, &pattern, &prefix);
            assert_eq!(ids, ref_ids, "trial {trial} prefix {prefix:?}");
            assert_eq!(probs, ref_probs, "trial {trial} prefix {prefix:?}");
        }
        assert!(
            session.reused_tokens() > 0,
            "40 related queries must hit the cache"
        );
    }

    /// The pre-refactor implementation: full forward from token zero.
    fn reference_distribution(
        model: &PasswordModel,
        pattern: &Pattern,
        prefix_chars: &str,
    ) -> (Vec<TokenId>, Vec<f64>) {
        let vocab = model.tokenizer().vocab();
        let pos = prefix_chars.chars().count();
        let class = pattern.class_at(pos).unwrap();
        let allowed = vocab.class_char_ids(class);
        let prompt =
            RulePrefix::constrained(model.tokenizer(), model.kind(), pattern, prefix_chars)
                .unwrap();
        let logits = model.gpt().next_token_logits(prompt.ids());
        let mut weights: Vec<f64> = allowed
            .iter()
            .map(|&id| f64::from(logits[id as usize]))
            .collect();
        let max = weights.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let mut sum = 0.0;
        for w in &mut weights {
            *w = (*w - max).exp();
            sum += *w;
        }
        for w in &mut weights {
            *w /= sum;
        }
        (allowed, weights)
    }

    #[test]
    fn sibling_queries_reuse_the_parent_prefix() {
        let model = tiny(ModelKind::PagPassGpt);
        let pattern: Pattern = "L4N2".parse().unwrap();
        let mut session = InferenceSession::new(&model);
        let _ = session.next_char_distribution(&pattern, "ab").unwrap();
        let after_first = session.computed_tokens();
        // Sibling prefixes share all but the last character.
        let _ = session.next_char_distribution(&pattern, "ac").unwrap();
        assert_eq!(
            session.computed_tokens(),
            after_first + 1,
            "a sibling query must feed exactly one new token"
        );
        // Exact repeat: nothing recomputed at all.
        let _ = session.next_char_distribution(&pattern, "ac").unwrap();
        assert_eq!(session.computed_tokens(), after_first + 1);
    }

    #[test]
    fn fork_answers_like_the_original() {
        let model = tiny(ModelKind::PagPassGpt);
        let pattern: Pattern = "L2N2".parse().unwrap();
        let mut a = InferenceSession::new(&model);
        let _ = a.next_char_distribution(&pattern, "q").unwrap();
        let mut b = a.fork();
        let da = a.next_char_distribution(&pattern, "qa").unwrap();
        let db = b.next_char_distribution(&pattern, "qa").unwrap();
        assert_eq!(da, db);
        // Diverge: each fork follows its own lineage without interference.
        let da2 = a.next_char_distribution(&pattern, "qb").unwrap();
        let db2 = b.next_char_distribution(&pattern, "qc").unwrap();
        assert_eq!(da2.0, db2.0);
        assert_eq!(da2.1, reference_distribution(&model, &pattern, "qb").1);
        assert_eq!(db2.1, reference_distribution(&model, &pattern, "qc").1);
    }

    #[test]
    fn session_leaf_matches_model_leaf() {
        // generate_leaf through a warm session must equal the stateless
        // call: same RNG stream, bit-identical logits, same passwords.
        let model = tiny(ModelKind::PagPassGpt);
        let pattern: Pattern = "L4N2".parse().unwrap();
        let mut session = InferenceSession::new(&model);
        // Warm the cache on an unrelated prefix first.
        let _ = session.next_char_distribution(&pattern, "zz").unwrap();
        let mut rng_a = Rng::seed_from(7);
        let a = session
            .generate_leaf(&pattern, "ab", 150, 1.0, &mut rng_a)
            .unwrap();
        let mut rng_b = Rng::seed_from(7);
        let b = model
            .generate_leaf(&pattern, "ab", 150, 1.0, &mut rng_b)
            .unwrap();
        assert_eq!(a, b);
        for pw in &a {
            assert!(pw.starts_with("ab"), "{pw}");
            assert!(pattern.matches(pw), "{pw}");
        }
    }

    #[test]
    fn prefix_longer_than_pattern_is_an_error() {
        let model = tiny(ModelKind::PagPassGpt);
        let pattern: Pattern = "L2".parse().unwrap();
        let mut session = InferenceSession::new(&model);
        assert!(matches!(
            session.next_char_distribution(&pattern, "abc"),
            Err(CoreError::PrefixTooLong { .. })
        ));
        let mut rng = Rng::seed_from(1);
        assert!(matches!(
            session.generate_leaf(&pattern, "abc", 5, 1.0, &mut rng),
            Err(CoreError::PrefixTooLong { .. })
        ));
    }

    #[test]
    fn log_probability_matches_model_api() {
        let model = tiny(ModelKind::PagPassGpt);
        let mut session = InferenceSession::new(&model);
        let via_session = session.log_probability("abc12").unwrap();
        let via_model = model.log_probability("abc12").unwrap();
        assert_eq!(via_session, via_model);
        assert!(session.log_probability("has space").is_err());
    }
}
