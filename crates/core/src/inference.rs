//! Unified inference layer: rule-prefix construction and KV-cached
//! incremental decoding shared by every generation path.
//!
//! Two pieces live here:
//!
//! * [`RulePrefix`] — the single builder for the `<BOS> [pattern <SEP>]
//!   [password chars]` prompt that free, guided, leaf, and distribution
//!   queries all start from. Before this module each call site re-derived
//!   the prompt by hand (and panicked on out-of-vocabulary characters);
//!   now there is one implementation and it returns [`CoreError`]s.
//! * [`InferenceSession`] — a stateful wrapper around one
//!   [`DecodeState`](pagpass_nn::Gpt::begin_decode) that answers
//!   consecutive queries by *seeking*: it truncates the KV cache back to
//!   the longest common prefix with the previous query and feeds only the
//!   suffix. D&C-GEN's task tree visits prefixes in breadth-first order,
//!   so consecutive tasks usually share all but one character — a worker
//!   threading one session through its tasks pays O(depth) forwards per
//!   lineage instead of the O(depth²) that per-task full forwards cost.
//!
//! # Exactness
//!
//! Seeking is *bit-exact*, not approximate: a cached K/V row at position
//! `p` is a pure function of the token and position embeddings at `p` and
//! the rows before it, so truncating to a shared prefix and re-feeding a
//! different suffix produces exactly the floats a fresh decode of the new
//! sequence would. The same argument covers
//! [`DecodeState::broadcast`](pagpass_nn::KvCache::broadcast): attention
//! rows never interact across a batch, so replicating a batch-1 prefix
//! cache equals feeding the prefix to every row. The cached-vs-uncached
//! tests in this module assert `==` on logits, not an epsilon.

use std::sync::Arc;

use pagpass_nn::{softmax_in_place, DecodeState, KernelMode, Mat, QuantizedGpt, Rng};
use pagpass_patterns::Pattern;
use pagpass_telemetry::{Counter, Histogram, Telemetry, LATENCY_MS_BOUNDS};
use pagpass_tokenizer::{TokenId, TokenizeError, Tokenizer, Vocab};

use crate::generate::{sample_batched_primed, SamplePlan};
use crate::model::{ModelKind, PasswordModel};
use crate::CoreError;

/// Telemetry counter fed by every session: KV positions served from the
/// cache instead of recomputed. The journal's `prefix_cache_hits` stat and
/// the paired bench both read this.
pub const PREFIX_REUSE_COUNTER: &str = "dcgen.prefix_reuse_tokens";

/// Histogram of wall time per batched forward phase
/// ([`InferenceSession::score_batch`]), milliseconds. The serve HTTP plane
/// exposes it via `GET /metrics` as `inference_forward_ms`.
pub const FORWARD_MS_HISTOGRAM: &str = "inference.forward.ms";

/// The token prompt a generation query starts from, according to the model
/// kind: `<BOS>` alone, `<BOS> pattern <SEP>` for pattern-conditioned
/// PagPassGPT queries, optionally extended with already-fixed password
/// characters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RulePrefix {
    ids: Vec<TokenId>,
}

impl RulePrefix {
    /// Unconditioned prompt: `<BOS>` alone (trawling generation, and the
    /// base for PassGPT's filter-style guided generation).
    #[must_use]
    pub fn free() -> RulePrefix {
        RulePrefix {
            ids: vec![Vocab::BOS],
        }
    }

    /// Pattern-conditioned prompt. PagPassGPT primes with
    /// `<BOS> pattern <SEP>` (the pattern is context, paper Eq. 1);
    /// PassGPT has no pattern section in its rules, so its guided prompt
    /// is `<BOS>` and the pattern is enforced by per-step masks instead.
    #[must_use]
    pub fn guided(tokenizer: &Tokenizer, kind: ModelKind, pattern: &Pattern) -> RulePrefix {
        match kind {
            ModelKind::PagPassGpt => RulePrefix {
                ids: tokenizer.encode_generation_prefix(pattern),
            },
            ModelKind::PassGpt => RulePrefix::free(),
        }
    }

    /// [`guided`](Self::guided) extended with password characters already
    /// fixed by the caller (a D&C-GEN task prefix).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Tokenize`] if a prefix character is outside
    /// the vocabulary.
    pub fn constrained(
        tokenizer: &Tokenizer,
        kind: ModelKind,
        pattern: &Pattern,
        prefix_chars: &str,
    ) -> Result<RulePrefix, CoreError> {
        let mut base = RulePrefix::guided(tokenizer, kind, pattern);
        let vocab = tokenizer.vocab();
        for c in prefix_chars.chars() {
            base.ids
                .push(vocab.char_id(c).ok_or(TokenizeError::UnknownChar(c))?);
        }
        Ok(base)
    }

    /// The prompt token ids.
    #[must_use]
    pub fn ids(&self) -> &[TokenId] {
        &self.ids
    }

    /// Number of prompt tokens.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// A rule prefix always contains at least `<BOS>`.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Consumes the builder, yielding the prompt ids.
    #[must_use]
    pub fn into_ids(self) -> Vec<TokenId> {
        self.ids
    }
}

/// A KV-cached decoding session over one model.
///
/// The session owns a batch-1 [`DecodeState`] plus the token sequence it
/// currently holds. Every query seeks to its target prompt — truncating
/// back to the longest common prefix and feeding only the divergent
/// suffix — then answers from the resulting logits. Queries through a
/// session return bit-identical results to stateless full forwards (see
/// the module docs), they just skip recomputing shared prefixes.
///
/// Sessions are cheap relative to the model but hold `n_layers` KV caches
/// of `ctx_len` positions; D&C-GEN creates one per worker thread and
/// threads it through every split and leaf that worker executes.
pub struct InferenceSession<'m> {
    model: &'m PasswordModel,
    /// Pack-once int8 decode weights, present iff the session was built
    /// under [`KernelMode::Quantized`]. Arc'd so [`fork`](Self::fork) and
    /// batch priming share one pack instead of re-quantizing.
    quant: Option<Arc<QuantizedGpt>>,
    state: DecodeState,
    /// Tokens currently in the cache; `state.pos() == tokens.len()`.
    tokens: Vec<TokenId>,
    /// Logits after the last fed token (empty until the first feed).
    last_logits: Vec<f32>,
    reuse_counter: Counter,
    /// Wall time of whole batched-forward phases ([`Self::score_batch`]).
    forward_ms: Histogram,
    reused: u64,
    computed: u64,
}

impl std::fmt::Debug for InferenceSession<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("InferenceSession")
            .field("cached", &self.tokens.len())
            .field("reused", &self.reused)
            .field("computed", &self.computed)
            .finish()
    }
}

impl<'m> InferenceSession<'m> {
    /// Opens a session with no telemetry (counts into the silent disabled
    /// registry).
    #[must_use]
    pub fn new(model: &'m PasswordModel) -> InferenceSession<'m> {
        InferenceSession::with_telemetry(model, Telemetry::disabled())
    }

    /// Opens a session whose cache hits feed `tel`'s
    /// [`PREFIX_REUSE_COUNTER`].
    ///
    /// This is the quantized-decode prepare step: when the process-wide
    /// kernel mode is [`KernelMode::Quantized`], the model's decode-path
    /// weights are packed into int8 blocks here, once, and every decode
    /// this session performs routes through them. Under any other mode the
    /// session decodes in bit-exact f32.
    #[must_use]
    pub fn with_telemetry(model: &'m PasswordModel, tel: &Telemetry) -> InferenceSession<'m> {
        let quant = (pagpass_nn::kernel_mode() == KernelMode::Quantized)
            .then(|| Arc::new(model.gpt().quantize()));
        InferenceSession {
            model,
            quant,
            state: model.gpt().begin_decode(1),
            tokens: Vec::new(),
            last_logits: Vec::new(),
            reuse_counter: tel.counter(PREFIX_REUSE_COUNTER),
            forward_ms: tel
                .registry()
                .histogram(FORWARD_MS_HISTOGRAM, LATENCY_MS_BOUNDS),
            reused: 0,
            computed: 0,
        }
    }

    /// Number of tokens currently cached.
    #[must_use]
    pub fn cached_len(&self) -> usize {
        self.tokens.len()
    }

    /// KV positions this session served from cache instead of recomputing.
    #[must_use]
    pub fn reused_tokens(&self) -> u64 {
        self.reused
    }

    /// Token forwards this session actually computed.
    #[must_use]
    pub fn computed_tokens(&self) -> u64 {
        self.computed
    }

    /// An independent copy of this session (shared KV prefix, divergent
    /// futures); the fork starts with fresh reuse statistics but feeds the
    /// same telemetry counter.
    #[must_use]
    pub fn fork(&self) -> InferenceSession<'m> {
        InferenceSession {
            model: self.model,
            quant: self.quant.clone(),
            state: self.state.fork(),
            tokens: self.tokens.clone(),
            last_logits: self.last_logits.clone(),
            reuse_counter: self.reuse_counter.clone(),
            forward_ms: self.forward_ms.clone(),
            reused: 0,
            computed: 0,
        }
    }

    /// Drops all cached state; the next query recomputes its prompt from
    /// scratch. (Used to measure the uncached baseline.)
    pub fn reset(&mut self) {
        self.state.clear();
        self.tokens.clear();
        self.last_logits.clear();
    }

    /// Feeds one token and records its logits.
    fn feed(&mut self, tok: TokenId) {
        let logits =
            self.model
                .gpt()
                .decode_step_with(self.quant.as_deref(), &[tok], &mut self.state);
        self.last_logits.clear();
        self.last_logits.extend_from_slice(logits.row(0));
        self.tokens.push(tok);
        self.computed += 1;
    }

    /// Moves the session to exactly `target`: truncates back to the
    /// longest common prefix with the cached tokens and feeds the rest.
    /// Afterwards `last_logits` holds the next-token logits for `target`.
    fn seek(&mut self, target: &[TokenId]) {
        debug_assert!(!target.is_empty(), "rule prefixes always carry <BOS>");
        let lcp = self
            .tokens
            .iter()
            .zip(target)
            .take_while(|(a, b)| a == b)
            .count();
        let keep = if lcp == target.len() && self.tokens.len() == target.len() {
            // Exact hit: the cached logits already answer this query.
            lcp
        } else {
            // Re-feed at least the final token so `last_logits` matches
            // the target; everything before the divergence is kept.
            lcp.min(target.len() - 1)
        };
        if keep < self.tokens.len() {
            self.state.truncate_to(keep);
            self.tokens.truncate(keep);
        }
        self.reused += keep as u64;
        self.reuse_counter.add(keep as u64);
        for &tok in &target[keep..] {
            self.feed(tok);
        }
    }

    /// Next-token logits for `target`, reusing the cached prefix.
    pub(crate) fn logits_for(&mut self, target: &[TokenId]) -> &[f32] {
        self.seek(target);
        &self.last_logits
    }

    /// Next-token distribution over character ids given a pattern and a
    /// password prefix — the quantity D&C-GEN splits tasks with
    /// (Algorithm 1, line 15), restricted to the class the pattern
    /// requires at the next position and renormalized.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::PrefixTooLong`] when the prefix already covers
    /// the whole pattern and [`CoreError::Tokenize`] for prefix characters
    /// outside the vocabulary.
    pub fn next_char_distribution(
        &mut self,
        pattern: &Pattern,
        prefix_chars: &str,
    ) -> Result<(Vec<TokenId>, Vec<f64>), CoreError> {
        let model = self.model;
        let vocab = model.tokenizer().vocab();
        let pos = prefix_chars.chars().count();
        let class = pattern.class_at(pos).ok_or(CoreError::PrefixTooLong {
            prefix_len: pos,
            pattern_len: pattern.char_len(),
        })?;
        let allowed = vocab.class_char_ids(class);
        let prompt =
            RulePrefix::constrained(model.tokenizer(), model.kind(), pattern, prefix_chars)?;
        self.seek(prompt.ids());
        let logits = &self.last_logits;
        let mut weights: Vec<f64> = allowed
            .iter()
            .map(|&id| f64::from(logits[id as usize]))
            .collect();
        let max = weights.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let mut sum = 0.0;
        for w in &mut weights {
            *w = (*w - max).exp();
            sum += *w;
        }
        for w in &mut weights {
            *w /= sum;
        }
        Ok((allowed, weights))
    }

    /// Continuation sampling for a D&C-GEN leaf: `n` passwords conforming
    /// to `pattern` that start with `prefix_chars`. The session advances
    /// its batch-1 cache to the leaf's prompt once, then every sampling
    /// batch is primed by broadcasting that cache — the prompt is never
    /// recomputed per batch row.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::PrefixTooLong`] when the prefix is longer than
    /// the pattern and [`CoreError::Tokenize`] for prefix characters
    /// outside the vocabulary.
    pub fn generate_leaf(
        &mut self,
        pattern: &Pattern,
        prefix_chars: &str,
        n: usize,
        temperature: f32,
        rng: &mut Rng,
    ) -> Result<Vec<String>, CoreError> {
        let model = self.model;
        let vocab = model.tokenizer().vocab();
        let done = prefix_chars.chars().count();
        let total = pattern.char_len();
        if done > total {
            return Err(CoreError::PrefixTooLong {
                prefix_len: done,
                pattern_len: total,
            });
        }
        // Masks are computed once per leaf; the plan callback hands out
        // borrows, so sampling steps allocate nothing for them.
        let masks: Vec<Vec<TokenId>> = pattern
            .position_classes()
            .skip(done)
            .map(|class| vocab.class_char_ids(class))
            .collect();
        let prompt =
            RulePrefix::constrained(model.tokenizer(), model.kind(), pattern, prefix_chars)?;
        self.seek(prompt.ids());
        let plan = SamplePlan {
            prefix: prompt.ids().to_vec(),
            max_new: total - done,
            temperature,
            banned: model.banned_ids(),
            allowed_at: Box::new(|step| masks.get(step).map(Vec::as_slice)),
        };
        let quant = self.quant.clone();
        let sequences = sample_batched_primed(
            model.gpt(),
            quant.as_deref(),
            vocab,
            &plan,
            n,
            PasswordModel::GEN_BATCH,
            rng,
            &mut |b| {
                // Every batch row starts from the cached prompt: count the
                // row-steps the broadcast saved.
                let hits = (self.state.pos() * b) as u64;
                self.reused += hits;
                self.reuse_counter.add(hits);
                (self.state.broadcast(b), replicate_row(&self.last_logits, b))
            },
        );
        Ok(sequences
            .into_iter()
            .map(|ids| {
                let mut pw = prefix_chars.to_owned();
                pw.push_str(&model.decode_chars(&ids));
                pw
            })
            .collect())
    }

    /// Natural-log probability the model assigns to `password` (the
    /// product of conditional token probabilities over its full rule).
    /// Scoring needs logits at *every* position, so it always recomputes;
    /// the session is reset first.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Tokenize`] for passwords outside the alphabet
    /// and [`CoreError::RuleTooLong`] when the encoded rule exceeds the
    /// context window.
    pub fn log_probability(&mut self, password: &str) -> Result<f64, CoreError> {
        let rule = self.encode_scorable(password)?;
        self.reset();
        let mut lp = 0.0f64;
        for (i, &tok) in rule.iter().enumerate() {
            if i > 0 {
                let mut probs = self.last_logits.clone();
                softmax_in_place(&mut probs);
                lp += f64::from(probs[tok as usize].max(1e-20)).ln();
            }
            self.feed(tok);
        }
        Ok(lp)
    }

    /// Encodes a password and checks the rule fits the context window.
    fn encode_scorable(&self, password: &str) -> Result<Vec<TokenId>, CoreError> {
        let rule = self.model.encode(password)?;
        let ctx_len = self.model.gpt().config().ctx_len;
        if rule.len() > ctx_len {
            return Err(CoreError::RuleTooLong {
                rule_len: rule.len(),
                ctx_len,
            });
        }
        Ok(rule)
    }

    /// Scores many passwords in batched forwards: one row per scorable
    /// password, every decode step processing the whole batch. Returns one
    /// result per input, in input order — per-row failures (unknown
    /// characters, oversized rules) never disturb their neighbors.
    ///
    /// Every rule starts with `<BOS>`, so the batch is assembled by
    /// seeking this session to `<BOS>` once and broadcasting that cache
    /// across the batch ([`DecodeState::broadcast`]); rows shorter than
    /// the longest rule re-feed `<BOS>` as an inert filler once their own
    /// tokens run out (attention rows never interact across a batch, so a
    /// filler feed cannot perturb any other row, and a finished row's own
    /// score is already fully accumulated).
    ///
    /// # Exactness
    ///
    /// Per-row results are **bit-identical** to calling
    /// [`log_probability`](Self::log_probability) on each password alone:
    /// the decode path runs row-independent exact kernels, and the per-row
    /// f64 accumulation order here matches the solo loop term for term.
    /// The serve smoke-test and `score_batch_is_bit_identical_to_solo`
    /// assert `==` on the scores, not an epsilon.
    pub fn score_batch(&mut self, passwords: &[impl AsRef<str>]) -> Vec<Result<f64, CoreError>> {
        // DET: wall-clock timing feeds the forward-phase latency histogram
        // only; it never influences scores or token streams.
        let started = std::time::Instant::now();
        let scores = self.score_batch_inner(passwords);
        self.forward_ms
            .record(started.elapsed().as_secs_f64() * 1e3);
        scores
    }

    fn score_batch_inner(&mut self, passwords: &[impl AsRef<str>]) -> Vec<Result<f64, CoreError>> {
        let encoded: Vec<Result<Vec<TokenId>, CoreError>> = passwords
            .iter()
            .map(|pw| self.encode_scorable(pw.as_ref()))
            .collect();
        let rules: Vec<&[TokenId]> = encoded.iter().filter_map(|r| r.as_deref().ok()).collect();
        let Some(max_len) = rules.iter().map(|r| r.len()).max() else {
            // Nothing scorable: every slot already carries its error.
            return encoded.into_iter().map(|r| r.map(|_| 0.0)).collect();
        };
        let b = rules.len();
        // Assemble the batch from this session's cache: seek to the shared
        // `<BOS>` prompt (bit-exact, possibly reused from the previous
        // wave) and replicate it across the batch.
        self.seek(&[Vocab::BOS]);
        let mut wide = self.state.broadcast(b);
        let saved = (self.state.pos() * b) as u64;
        self.reused += saved;
        self.reuse_counter.add(saved);
        // Logits matrix after the tokens fed so far; row r scores its
        // token at index `pos` exactly as the solo loop would.
        let mut logits = replicate_row(&self.last_logits, b);
        let mut lps = vec![0.0f64; b];
        for pos in 1..max_len {
            for (r, rule) in rules.iter().enumerate() {
                if pos < rule.len() {
                    let mut probs = logits.row(r).to_vec();
                    softmax_in_place(&mut probs);
                    lps[r] += f64::from(probs[rule[pos] as usize].max(1e-20)).ln();
                }
            }
            if pos + 1 < max_len {
                // Feed index `pos`; exhausted rows feed the inert filler.
                let tokens: Vec<TokenId> = rules
                    .iter()
                    .map(|rule| rule.get(pos).copied().unwrap_or(Vocab::BOS))
                    .collect();
                logits =
                    self.model
                        .gpt()
                        .decode_step_with(self.quant.as_deref(), &tokens, &mut wide);
                self.computed += b as u64;
            }
        }
        let mut scored = lps.into_iter();
        encoded
            .into_iter()
            .map(|slot| slot.map(|_| scored.next().unwrap_or(0.0)))
            .collect()
    }
}

/// Replicates one logits row across `b` batch rows.
fn replicate_row(row: &[f32], b: usize) -> Mat {
    let mut data = Vec::with_capacity(row.len() * b);
    for _ in 0..b {
        data.extend_from_slice(row);
    }
    Mat::from_rows(b, row.len(), data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pagpass_nn::GptConfig;
    use pagpass_tokenizer::VOCAB_SIZE;

    fn tiny(kind: ModelKind) -> PasswordModel {
        PasswordModel::new(
            kind,
            GptConfig {
                vocab_size: VOCAB_SIZE,
                ctx_len: 32,
                dim: 16,
                n_layers: 1,
                n_heads: 2,
            },
            3,
        )
    }

    #[test]
    fn rule_prefix_shapes_per_kind() {
        let tok = Tokenizer::new();
        let pattern: Pattern = "L3N2".parse().unwrap();
        assert_eq!(RulePrefix::free().ids(), &[Vocab::BOS]);
        let pag = RulePrefix::guided(&tok, ModelKind::PagPassGpt, &pattern);
        assert_eq!(pag.ids(), &tok.encode_generation_prefix(&pattern)[..]);
        let pass = RulePrefix::guided(&tok, ModelKind::PassGpt, &pattern);
        assert_eq!(pass.ids(), &[Vocab::BOS]);
        let ext = RulePrefix::constrained(&tok, ModelKind::PagPassGpt, &pattern, "ab").unwrap();
        assert_eq!(ext.len(), pag.len() + 2);
        assert!(!ext.is_empty());
    }

    #[test]
    fn rule_prefix_rejects_unknown_chars() {
        let tok = Tokenizer::new();
        let pattern: Pattern = "L3".parse().unwrap();
        let err = RulePrefix::constrained(&tok, ModelKind::PagPassGpt, &pattern, "a\u{1f600}");
        assert!(matches!(err, Err(CoreError::Tokenize(_))));
    }

    #[test]
    fn session_distribution_matches_full_forward_on_random_prefixes() {
        // The tentpole equivalence guarantee: a session answering queries
        // for many different prefixes — hitting truncate/reuse paths in
        // every order — returns *bit-identical* distributions to fresh
        // full forwards.
        let model = tiny(ModelKind::PagPassGpt);
        let pattern: Pattern = "L3N2S1".parse().unwrap();
        let mut session = InferenceSession::new(&model);
        let mut rng = Rng::seed_from(11);
        let letters = "abcdefghijklmnopqrstuvwxyz";
        let digits = "0123456789";
        for trial in 0..40 {
            // Random prefix of random length (0..=5) conforming to the
            // pattern's classes.
            let len = rng.below(6);
            let mut prefix = String::new();
            for i in 0..len {
                let pool = if i < 3 { letters } else { digits };
                let k = rng.below(pool.len());
                prefix.push(pool.as_bytes()[k] as char);
            }
            let (ids, probs) = session.next_char_distribution(&pattern, &prefix).unwrap();
            let (ref_ids, ref_probs) = reference_distribution(&model, &pattern, &prefix);
            assert_eq!(ids, ref_ids, "trial {trial} prefix {prefix:?}");
            assert_eq!(probs, ref_probs, "trial {trial} prefix {prefix:?}");
        }
        assert!(
            session.reused_tokens() > 0,
            "40 related queries must hit the cache"
        );
    }

    #[test]
    fn best_first_access_pattern_is_bit_exact_against_full_forwards() {
        // SOPG's frontier hops between unrelated subtrees — a child of
        // "qx" one query, a sibling of "ab" the next — so the session
        // repeatedly truncates to shallow shared prefixes instead of
        // walking a single lineage like D&C-GEN's FIFO order does.
        // Replay an actual best-first expansion and demand every
        // distribution equal a fresh full forward bitwise.
        let model = tiny(ModelKind::PagPassGpt);
        let pattern: Pattern = "L2N2".parse().unwrap();
        let vocab = model.tokenizer().vocab();
        let mut session = InferenceSession::new(&model);
        let mut frontier: Vec<(f64, String)> = vec![(0.0, String::new())];
        for _ in 0..30 {
            let best = frontier
                .iter()
                .enumerate()
                .filter(|(_, (_, p))| p.chars().count() < pattern.char_len())
                .max_by(|a, b| a.1 .0.total_cmp(&b.1 .0).then(b.1 .1.cmp(&a.1 .1)))
                .map(|(i, _)| i)
                .expect("pattern space is deep enough for 30 expansions");
            let (lp, prefix) = frontier.swap_remove(best);
            let (ids, probs) = session.next_char_distribution(&pattern, &prefix).unwrap();
            let (ref_ids, ref_probs) = reference_distribution(&model, &pattern, &prefix);
            assert_eq!(ids, ref_ids, "prefix {prefix:?}");
            assert_eq!(probs, ref_probs, "prefix {prefix:?}");
            for (&id, &p) in ids.iter().zip(&probs) {
                if let Some(pagpass_tokenizer::Token::Char(c)) = vocab.token_of(id) {
                    let mut child = prefix.clone();
                    child.push(c);
                    frontier.push((lp + p.ln(), child));
                }
            }
        }
        assert!(
            session.reused_tokens() > 0,
            "best-first hopping must still reuse shared shallow prefixes"
        );
    }

    /// The pre-refactor implementation: full forward from token zero.
    fn reference_distribution(
        model: &PasswordModel,
        pattern: &Pattern,
        prefix_chars: &str,
    ) -> (Vec<TokenId>, Vec<f64>) {
        let vocab = model.tokenizer().vocab();
        let pos = prefix_chars.chars().count();
        let class = pattern.class_at(pos).unwrap();
        let allowed = vocab.class_char_ids(class);
        let prompt =
            RulePrefix::constrained(model.tokenizer(), model.kind(), pattern, prefix_chars)
                .unwrap();
        let logits = model.gpt().next_token_logits(prompt.ids());
        let mut weights: Vec<f64> = allowed
            .iter()
            .map(|&id| f64::from(logits[id as usize]))
            .collect();
        let max = weights.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let mut sum = 0.0;
        for w in &mut weights {
            *w = (*w - max).exp();
            sum += *w;
        }
        for w in &mut weights {
            *w /= sum;
        }
        (allowed, weights)
    }

    #[test]
    fn sibling_queries_reuse_the_parent_prefix() {
        let model = tiny(ModelKind::PagPassGpt);
        let pattern: Pattern = "L4N2".parse().unwrap();
        let mut session = InferenceSession::new(&model);
        let _ = session.next_char_distribution(&pattern, "ab").unwrap();
        let after_first = session.computed_tokens();
        // Sibling prefixes share all but the last character.
        let _ = session.next_char_distribution(&pattern, "ac").unwrap();
        assert_eq!(
            session.computed_tokens(),
            after_first + 1,
            "a sibling query must feed exactly one new token"
        );
        // Exact repeat: nothing recomputed at all.
        let _ = session.next_char_distribution(&pattern, "ac").unwrap();
        assert_eq!(session.computed_tokens(), after_first + 1);
    }

    #[test]
    fn fork_answers_like_the_original() {
        let model = tiny(ModelKind::PagPassGpt);
        let pattern: Pattern = "L2N2".parse().unwrap();
        let mut a = InferenceSession::new(&model);
        let _ = a.next_char_distribution(&pattern, "q").unwrap();
        let mut b = a.fork();
        let da = a.next_char_distribution(&pattern, "qa").unwrap();
        let db = b.next_char_distribution(&pattern, "qa").unwrap();
        assert_eq!(da, db);
        // Diverge: each fork follows its own lineage without interference.
        let da2 = a.next_char_distribution(&pattern, "qb").unwrap();
        let db2 = b.next_char_distribution(&pattern, "qc").unwrap();
        assert_eq!(da2.0, db2.0);
        assert_eq!(da2.1, reference_distribution(&model, &pattern, "qb").1);
        assert_eq!(db2.1, reference_distribution(&model, &pattern, "qc").1);
    }

    #[test]
    fn session_leaf_matches_model_leaf() {
        // generate_leaf through a warm session must equal the stateless
        // call: same RNG stream, bit-identical logits, same passwords.
        let model = tiny(ModelKind::PagPassGpt);
        let pattern: Pattern = "L4N2".parse().unwrap();
        let mut session = InferenceSession::new(&model);
        // Warm the cache on an unrelated prefix first.
        let _ = session.next_char_distribution(&pattern, "zz").unwrap();
        let mut rng_a = Rng::seed_from(7);
        let a = session
            .generate_leaf(&pattern, "ab", 150, 1.0, &mut rng_a)
            .unwrap();
        let mut rng_b = Rng::seed_from(7);
        let b = model
            .generate_leaf(&pattern, "ab", 150, 1.0, &mut rng_b)
            .unwrap();
        assert_eq!(a, b);
        for pw in &a {
            assert!(pw.starts_with("ab"), "{pw}");
            assert!(pattern.matches(pw), "{pw}");
        }
    }

    #[test]
    fn prefix_longer_than_pattern_is_an_error() {
        let model = tiny(ModelKind::PagPassGpt);
        let pattern: Pattern = "L2".parse().unwrap();
        let mut session = InferenceSession::new(&model);
        assert!(matches!(
            session.next_char_distribution(&pattern, "abc"),
            Err(CoreError::PrefixTooLong { .. })
        ));
        let mut rng = Rng::seed_from(1);
        assert!(matches!(
            session.generate_leaf(&pattern, "abc", 5, 1.0, &mut rng),
            Err(CoreError::PrefixTooLong { .. })
        ));
    }

    #[test]
    fn log_probability_matches_model_api() {
        let model = tiny(ModelKind::PagPassGpt);
        let mut session = InferenceSession::new(&model);
        let via_session = session.log_probability("abc12").unwrap();
        let via_model = model.log_probability("abc12").unwrap();
        assert_eq!(via_session, via_model);
        assert!(session.log_probability("has space").is_err());
    }

    #[test]
    fn score_batch_is_bit_identical_to_solo() {
        // The serving guarantee: co-batched scoring returns exactly the
        // floats a one-shot solo scoring of each password returns — `==`,
        // not an epsilon — regardless of batch composition or row order.
        let model = tiny(ModelKind::PagPassGpt);
        let passwords = ["abc12", "zzz", "q1w2e3", "a", "longerpw9"];
        let solo: Vec<f64> = passwords
            .iter()
            .map(|pw| InferenceSession::new(&model).log_probability(pw).unwrap())
            .collect();
        let mut session = InferenceSession::new(&model);
        let batched = session.score_batch(&passwords);
        for ((pw, want), got) in passwords.iter().zip(&solo).zip(&batched) {
            assert_eq!(
                got.as_ref().copied().unwrap(),
                *want,
                "batched score for {pw:?} diverged from solo"
            );
        }
        // A different batch shape scores the same rows identically.
        let rebatched = session.score_batch(&passwords[..2]);
        assert_eq!(rebatched[0].as_ref().copied().unwrap(), solo[0]);
        assert_eq!(rebatched[1].as_ref().copied().unwrap(), solo[1]);
    }

    #[test]
    fn score_batch_isolates_per_row_failures() {
        let model = tiny(ModelKind::PagPassGpt);
        let mut session = InferenceSession::new(&model);
        let solo = InferenceSession::new(&model)
            .log_probability("abc12")
            .unwrap();
        let results = session.score_batch(&["abc12", "has space", "abc12"]);
        assert_eq!(results[0].as_ref().copied().unwrap(), solo);
        assert!(matches!(results[1], Err(CoreError::Tokenize(_))));
        assert_eq!(results[2].as_ref().copied().unwrap(), solo);
        // An all-error batch still answers slot by slot.
        let all_bad = session.score_batch(&["bad pw", "also bad"]);
        assert!(all_bad.iter().all(Result::is_err));
    }

    #[test]
    fn oversized_rules_error_instead_of_panicking() {
        // 16 single-char segments encode past the 32-token window; both
        // scoring paths must reject, not panic the decode loop.
        let model = tiny(ModelKind::PagPassGpt);
        let long = "a1b2c3d4e5f6g7h8";
        let mut session = InferenceSession::new(&model);
        assert!(matches!(
            session.log_probability(long),
            Err(CoreError::RuleTooLong { .. })
        ));
        let results = session.score_batch(&["abc12", long]);
        assert!(results[0].is_ok());
        assert!(matches!(results[1], Err(CoreError::RuleTooLong { .. })));
    }
}
