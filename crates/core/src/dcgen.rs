use std::path::Path;
use std::time::Duration;

use pagpass_patterns::{Pattern, PatternDistribution};
use pagpass_telemetry::Telemetry;
use serde::{Deserialize, Serialize};

use crate::control::{CancelToken, FaultPlan};
use crate::journal::DcGenJournal;
use crate::sched::{self, pool::PoolState, SchedulerKind};
use crate::{CoreError, ModelKind, PasswordModel};

/// Configuration of a D&C-GEN run (paper Algorithm 1 plus the §III-C3
/// optimizations).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DcGenConfig {
    /// Total guess budget `N`. The run emits **at most** this many
    /// passwords; leaf quotas that would overshoot through rounding are
    /// truncated against the global budget.
    pub total: u64,
    /// Division threshold `T`: a subtask with a quota at or below this is
    /// executed instead of split. The paper sets 4 000 for its GPU; pick
    /// the batch size your hardware generates efficiently.
    pub threshold: u64,
    /// Sampling temperature inside leaf tasks.
    pub temperature: f32,
    /// RNG seed. Each task derives its own stream from `(seed, task id)`,
    /// so single-worker runs are byte-reproducible — including across an
    /// interrupt/resume cycle.
    pub seed: u64,
    /// Optional cap on how many top patterns receive budget; probabilities
    /// are renormalized over the kept set.
    pub max_patterns: Option<usize>,
    /// Ablation switch: allocate the budget uniformly across patterns
    /// instead of by their empirical probability.
    pub uniform_patterns: bool,
    /// Concurrent task workers (paper optimization 3). With `1` the run is
    /// fully deterministic.
    pub workers: usize,
    /// How many times a panicking task is retried before it is abandoned
    /// and recorded in [`DcGenReport::failed_tasks`].
    pub max_task_retries: u32,
    /// Completed tasks between journal snapshots when a journal path is
    /// given ([`DcGenOptions::journal`]); `0` journals only at the end of
    /// the run.
    pub journal_every: u64,
    /// Which guess-ordering strategy drives the run. The default,
    /// [`SchedulerKind::Dcgen`], is the paper's algorithm; see
    /// [`SchedulerKind`] for the alternatives.
    #[serde(default)]
    pub scheduler: SchedulerKind,
    /// SOPG frontier cap: maximum pending nodes kept by the best-first
    /// scheduler before the least probable are evicted deterministically.
    /// `0` means unbounded. Ignored by the other schedulers.
    #[serde(default)]
    pub frontier_cap: u64,
}

impl DcGenConfig {
    /// A sensible CPU-scale default: `N` guesses with threshold 256,
    /// single-worker for determinism, two retries per faulty task, the
    /// paper's D&C-GEN scheduler.
    #[must_use]
    pub fn new(total: u64) -> DcGenConfig {
        DcGenConfig {
            total,
            threshold: 256,
            temperature: 1.0,
            seed: 0,
            max_patterns: None,
            uniform_patterns: false,
            workers: 1,
            max_task_retries: 2,
            journal_every: 64,
            scheduler: SchedulerKind::Dcgen,
            frontier_cap: 0,
        }
    }

    /// CRC32 of the scheduling-relevant configuration, journaled so a
    /// resumed run can show *what* it is resuming (scheduler identity is
    /// checked separately and hard-fails on mismatch).
    #[must_use]
    pub fn sched_config_hash(&self) -> u32 {
        let canon = format!(
            "{} total={} threshold={} temp={:08x} seed={} frontier_cap={}",
            self.scheduler,
            self.total,
            self.threshold,
            self.temperature.to_bits(),
            self.seed,
            self.frontier_cap,
        );
        pagpass_nn::crc32(canon.as_bytes())
    }
}

/// A task abandoned after exhausting its retry budget. The run continues
/// without it; its quota is the upper bound on the guesses lost.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FailedTask {
    /// Pattern of the abandoned subtask (display form, e.g. `L6N2`).
    pub pattern: String,
    /// Password prefix the subtask was constrained to.
    pub prefix: String,
    /// Guess quota the subtask carried.
    pub quota: f64,
    /// Panic message of the final attempt.
    pub error: String,
}

/// Runtime options for a D&C-GEN run: everything that controls *how* the
/// run executes rather than *what* it computes.
#[derive(Default, Clone, Copy)]
pub struct DcGenOptions<'a> {
    /// Cooperative cancellation; workers drain at the next task boundary.
    pub cancel: Option<&'a CancelToken>,
    /// Wall-clock budget; the pool drains once it elapses.
    pub deadline: Option<Duration>,
    /// Sidecar journal path enabling [`DcGen::resume`] after interruption.
    pub journal: Option<&'a Path>,
    /// Deterministic fault injection (tests only).
    pub fault: Option<&'a FaultPlan>,
    /// Streaming output; when set, passwords go to the sink batch by batch
    /// and [`DcGenReport::passwords`] stays empty (bounded memory).
    pub sink: Option<&'a dyn PasswordSink>,
    /// Telemetry: metric registration plus structured events. `None` falls
    /// back to [`Telemetry::disabled`] — the run still counts into a silent
    /// registry, at the cost of a few relaxed atomics per task.
    pub telemetry: Option<&'a Telemetry>,
    /// Disables cross-task KV-cache prefix reuse: workers reset their
    /// inference session before every task and leaves prime per batch.
    /// Output is byte-identical either way (reuse is bit-exact); this
    /// exists so the paired bench can measure the uncached baseline.
    pub no_prefix_reuse: bool,
}

impl std::fmt::Debug for DcGenOptions<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DcGenOptions")
            .field("cancel", &self.cancel)
            .field("deadline", &self.deadline)
            .field("journal", &self.journal)
            .field("fault", &self.fault)
            .field("sink", &self.sink.map(|_| "dyn PasswordSink"))
            .field("telemetry", &self.telemetry.is_some())
            .field("no_prefix_reuse", &self.no_prefix_reuse)
            .finish()
    }
}

/// Streaming receiver for generated passwords.
///
/// Implementations must be `Sync`: worker threads emit concurrently
/// (serialized by the pool's internal lock, so calls never overlap, but
/// they do come from different threads).
pub trait PasswordSink: Sync {
    /// Accepts one leaf's worth of passwords.
    ///
    /// # Errors
    ///
    /// An error stops the run; the final journal still reflects every
    /// batch that was accepted.
    fn emit(&self, batch: &[String]) -> std::io::Result<()>;
}

/// Outcome of a D&C-GEN run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DcGenReport {
    /// Every generated password, leaf by leaf (or, for the SOPG
    /// scheduler, in exact descending-probability order). Empty when a
    /// [`PasswordSink`] streamed them out instead; on resume, contains
    /// only passwords generated *after* the journal snapshot.
    pub passwords: Vec<String>,
    /// Number of leaf tasks executed.
    pub leaf_tasks: usize,
    /// Number of task expansions (model-guided divisions).
    pub expansions: usize,
    /// Subtasks dropped because their quota rounded below one password
    /// (or, for SOPG, children pruned for zero probability).
    pub deleted_tasks: usize,
    /// Patterns that received budget.
    pub patterns_used: usize,
    /// Total passwords emitted, including any counted by a resumed
    /// journal. Never exceeds [`DcGenConfig::total`].
    pub emitted: u64,
    /// Tasks abandoned after exhausting their retry budget.
    pub failed_tasks: Vec<FailedTask>,
    /// Task executions that panicked and were retried.
    pub retries: u64,
    /// Duplicate passwords observed within leaves (including any counted
    /// by a resumed journal). Subtasks are disjoint, so repeats can *only*
    /// occur inside one leaf: `leaf_duplicates / emitted` is the run's
    /// exact observed repeat rate, even when passwords streamed to a sink.
    #[serde(default)]
    pub leaf_duplicates: u64,
    /// KV-cache positions served from a worker's inference session instead
    /// of recomputed (splits reusing a parent's prompt, leaves broadcasting
    /// a primed prompt across batch rows). Purely an efficiency statistic:
    /// reuse is bit-exact and never changes which passwords are emitted.
    #[serde(default)]
    pub prefix_cache_hits: u64,
    /// Frontier nodes evicted by the SOPG memory cap
    /// ([`DcGenConfig::frontier_cap`]); zero for the other schedulers.
    #[serde(default)]
    pub frontier_evictions: u64,
    /// Log-probabilities of ordered emissions, in emission order (SOPG
    /// only; empty for sampling schedulers). Non-increasing by
    /// construction — the property the scheduler-comparison report and
    /// property tests assert.
    #[serde(default)]
    pub emission_log_probs: Vec<f64>,
    /// Whether the run stopped early (cancellation or deadline) with tasks
    /// still pending. A journaled interrupted run can be continued with
    /// [`DcGen::resume`].
    pub interrupted: bool,
    /// Journal writes that failed; the run continues through these (the
    /// journal is an aid, not a dependency), but resume granularity
    /// degrades to the last successful snapshot.
    pub journal_errors: u64,
}

impl DcGenReport {
    fn empty() -> DcGenReport {
        DcGenReport {
            passwords: Vec::new(),
            leaf_tasks: 0,
            expansions: 0,
            deleted_tasks: 0,
            patterns_used: 0,
            emitted: 0,
            failed_tasks: Vec::new(),
            retries: 0,
            leaf_duplicates: 0,
            prefix_cache_hits: 0,
            frontier_evictions: 0,
            emission_log_probs: Vec::new(),
            interrupted: false,
            journal_errors: 0,
        }
    }
}

/// The D&C-GEN divide-and-conquer generator.
///
/// The guess budget is first divided across patterns by `Pr(P)` (capped at
/// each pattern's search space — optimization 2), then recursively across
/// next-character extensions using the model's conditional distribution,
/// until a subtask's quota is at most [`DcGenConfig::threshold`]. Leaves
/// sample their quota under the (pattern, prefix) constraint. Distinct
/// subtasks are disjoint by construction — they differ in pattern or in
/// prefix — so repeats can only arise *within* one leaf.
///
/// # Scheduling
///
/// The division policy above is one [`SchedulerKind`]; the same runner
/// also drives SOPG best-first ordered enumeration and a plain-sampling
/// baseline ([`DcGenConfig::scheduler`]). All schedulers share the worker
/// pool, fault tolerance, journaling, and telemetry below.
///
/// # Fault tolerance
///
/// Tasks run under a supervisor: workers park on a condition variable when
/// idle, every task executes inside a panic boundary, and a panicking task
/// is retried up to [`DcGenConfig::max_task_retries`] times before being
/// recorded in [`DcGenReport::failed_tasks`] — one bad subtask never kills
/// the run. Cooperative cancellation ([`CancelToken`]) and an optional
/// deadline drain the pool cleanly with partial results, and an optional
/// journal ([`DcGenOptions::journal`]) makes interrupted runs resumable via
/// [`DcGen::resume`].
///
/// # Examples
///
/// ```no_run
/// use pagpassgpt::{DcGen, DcGenConfig, ModelKind, PasswordModel};
/// use pagpass_patterns::PatternDistribution;
///
/// # fn demo(model: &PasswordModel, patterns: &PatternDistribution) {
/// let report = DcGen::new(model, DcGenConfig::new(10_000)).run(patterns).unwrap();
/// println!("{} passwords from {} leaves", report.passwords.len(), report.leaf_tasks);
/// # }
/// ```
#[derive(Debug)]
pub struct DcGen<'a> {
    model: &'a PasswordModel,
    config: DcGenConfig,
}

impl<'a> DcGen<'a> {
    /// Creates a generator borrowing a trained PagPassGPT model.
    #[must_use]
    pub fn new(model: &'a PasswordModel, config: DcGenConfig) -> DcGen<'a> {
        DcGen { model, config }
    }

    /// Runs Algorithm 1 against the pattern prior `patterns` (normally the
    /// training corpus's [`PatternDistribution`]).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::WrongKind`] for PassGPT models — D&C-GEN relies
    /// on pattern-conditioned prefixes, which only PagPassGPT offers.
    pub fn run(&self, patterns: &PatternDistribution) -> Result<DcGenReport, CoreError> {
        self.run_with(patterns, &DcGenOptions::default())
    }

    /// [`run`](Self::run) with runtime options: cancellation, a deadline,
    /// journaling, fault injection, and streaming output.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::WrongKind`] for PassGPT models and
    /// [`CoreError::Io`] when a [`PasswordSink`] write fails (the final
    /// journal, if configured, is still written first so the run can be
    /// resumed).
    pub fn run_with(
        &self,
        patterns: &PatternDistribution,
        opts: &DcGenOptions<'_>,
    ) -> Result<DcGenReport, CoreError> {
        if self.model.kind() != ModelKind::PagPassGpt {
            return Err(CoreError::WrongKind {
                expected: "PagPassGPT",
            });
        }
        let ranked = {
            let mut ranked = patterns.ranked();
            if let Some(cap) = self.config.max_patterns {
                ranked.truncate(cap);
            }
            ranked
        };
        let mass: f64 = if self.config.uniform_patterns {
            ranked.len() as f64
        } else {
            ranked.iter().map(|e| e.probability).sum()
        };
        if ranked.is_empty() || mass <= 0.0 || self.config.total == 0 {
            return Ok(DcGenReport::empty());
        }

        let pattern_list: Vec<Pattern> = ranked.iter().map(|e| e.pattern.clone()).collect();
        let priors: Vec<f64> = ranked
            .iter()
            .map(|e| {
                if self.config.uniform_patterns {
                    1.0
                } else {
                    e.probability
                }
            })
            .collect();
        let seeded = sched::seed(&self.config, &pattern_list, &priors, mass);
        let state = PoolState::fresh(seeded.scheduler, seeded.patterns_used, seeded.deleted);
        sched::pool::run_pool(self.model, &self.config, state, &pattern_list, opts)
    }

    /// Continues an interrupted run from its journal.
    ///
    /// The journal carries the original configuration (scheduler
    /// included), the pattern table, and every task not yet completed;
    /// generation picks up from there. Passwords counted by the journal
    /// are *not* regenerated — truncate a partially-written output file to
    /// [`DcGenJournal::emitted`] lines and append this run's output. With
    /// `workers == 1` the combined output is byte-identical to the
    /// uninterrupted run.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::WrongKind`] for PassGPT models and
    /// [`CoreError::Io`] for sink failures, as [`run_with`](Self::run_with).
    pub fn resume(
        model: &'a PasswordModel,
        journal: &DcGenJournal,
        opts: &DcGenOptions<'_>,
    ) -> Result<DcGenReport, CoreError> {
        if model.kind() != ModelKind::PagPassGpt {
            return Err(CoreError::WrongKind {
                expected: "PagPassGPT",
            });
        }
        let config = DcGenConfig {
            total: journal.total,
            threshold: journal.threshold,
            temperature: journal.temperature,
            seed: journal.seed,
            max_patterns: None,
            uniform_patterns: false,
            workers: journal.workers,
            max_task_retries: journal.max_task_retries,
            journal_every: journal.journal_every,
            scheduler: journal.scheduler,
            frontier_cap: journal.frontier_cap,
        };
        let scheduler = sched::restore(&config, journal);
        let state = PoolState::resumed(scheduler, journal);
        sched::pool::run_pool(model, &config, state, &journal.patterns, opts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pagpass_nn::GptConfig;
    use pagpass_tokenizer::VOCAB_SIZE;

    fn tiny_model(kind: ModelKind) -> PasswordModel {
        PasswordModel::new(
            kind,
            GptConfig {
                vocab_size: VOCAB_SIZE,
                ctx_len: 32,
                dim: 16,
                n_layers: 1,
                n_heads: 2,
            },
            5,
        )
    }

    fn simple_patterns() -> PatternDistribution {
        PatternDistribution::from_passwords(["ab12", "cd34", "ef56", "xy9", "qqq1"].iter().copied())
    }

    #[test]
    fn rejects_passgpt_models() {
        let model = tiny_model(ModelKind::PassGpt);
        let err = DcGen::new(&model, DcGenConfig::new(100)).run(&simple_patterns());
        assert!(matches!(err, Err(CoreError::WrongKind { .. })));
    }

    #[test]
    fn small_budget_executes_leaves_directly() {
        let model = tiny_model(ModelKind::PagPassGpt);
        let config = DcGenConfig {
            threshold: 1_000,
            ..DcGenConfig::new(100)
        };
        let report = DcGen::new(&model, config).run(&simple_patterns()).unwrap();
        assert_eq!(report.expansions, 0, "all quotas are below the threshold");
        assert!(report.leaf_tasks > 0);
        assert!(!report.passwords.is_empty());
        // Budget conservation up to rounding: within 2x of N.
        let n = report.passwords.len() as u64;
        assert!((50..=200).contains(&n), "generated {n} for budget 100");
    }

    #[test]
    fn large_budget_forces_divisions() {
        let model = tiny_model(ModelKind::PagPassGpt);
        let config = DcGenConfig {
            threshold: 50,
            ..DcGenConfig::new(2_000)
        };
        let report = DcGen::new(&model, config).run(&simple_patterns()).unwrap();
        assert!(report.expansions > 0, "quotas above T must split");
    }

    #[test]
    fn all_outputs_conform_to_some_requested_pattern() {
        let model = tiny_model(ModelKind::PagPassGpt);
        let patterns = simple_patterns();
        let config = DcGenConfig {
            threshold: 64,
            ..DcGenConfig::new(500)
        };
        let report = DcGen::new(&model, config).run(&patterns).unwrap();
        let known: Vec<Pattern> = patterns.ranked().into_iter().map(|e| e.pattern).collect();
        for pw in &report.passwords {
            let p = Pattern::of_password(pw).unwrap();
            assert!(known.contains(&p), "{pw} has unexpected pattern {p}");
        }
    }

    #[test]
    fn single_worker_is_deterministic() {
        let model = tiny_model(ModelKind::PagPassGpt);
        let config = DcGenConfig {
            threshold: 64,
            seed: 9,
            ..DcGenConfig::new(300)
        };
        let a = DcGen::new(&model, config.clone())
            .run(&simple_patterns())
            .unwrap();
        let b = DcGen::new(&model, config).run(&simple_patterns()).unwrap();
        assert_eq!(a.passwords, b.passwords);
    }

    #[test]
    fn multi_worker_run_completes_with_same_volume() {
        let model = tiny_model(ModelKind::PagPassGpt);
        let single = DcGenConfig {
            threshold: 64,
            workers: 1,
            ..DcGenConfig::new(400)
        };
        let multi = DcGenConfig {
            threshold: 64,
            workers: 4,
            ..DcGenConfig::new(400)
        };
        let a = DcGen::new(&model, single).run(&simple_patterns()).unwrap();
        let b = DcGen::new(&model, multi).run(&simple_patterns()).unwrap();
        assert_eq!(
            a.leaf_tasks, b.leaf_tasks,
            "task tree is schedule-independent"
        );
        assert_eq!(a.passwords.len(), b.passwords.len());
    }

    #[test]
    fn search_space_cap_limits_small_patterns() {
        // Pattern N1 admits only 10 passwords; a huge budget must be capped.
        let model = tiny_model(ModelKind::PagPassGpt);
        let patterns = PatternDistribution::from_passwords(["7"].iter().copied());
        let config = DcGenConfig {
            threshold: 1_000_000,
            ..DcGenConfig::new(100_000)
        };
        let report = DcGen::new(&model, config).run(&patterns).unwrap();
        assert!(
            report.passwords.len() <= 10 * 2,
            "cap at search space, got {}",
            report.passwords.len()
        );
    }

    #[test]
    fn zero_budget_and_empty_priors_are_harmless() {
        let model = tiny_model(ModelKind::PagPassGpt);
        let empty = PatternDistribution::new();
        let r1 = DcGen::new(&model, DcGenConfig::new(0))
            .run(&simple_patterns())
            .unwrap();
        let r2 = DcGen::new(&model, DcGenConfig::new(100))
            .run(&empty)
            .unwrap();
        assert!(r1.passwords.is_empty());
        assert!(r2.passwords.is_empty());
    }

    #[test]
    fn max_patterns_caps_and_renormalizes() {
        let model = tiny_model(ModelKind::PagPassGpt);
        let config = DcGenConfig {
            max_patterns: Some(1),
            threshold: 1_000,
            ..DcGenConfig::new(100)
        };
        let report = DcGen::new(&model, config).run(&simple_patterns()).unwrap();
        assert_eq!(report.patterns_used, 1);
        // All budget flows to the one pattern.
        assert!(report.passwords.len() >= 80);
    }

    #[test]
    fn never_exceeds_global_budget() {
        // Leaf quotas round up (`.max(1.0)`), so without the reservation
        // cap many small leaves overshoot N. Exercise several shapes.
        let model = tiny_model(ModelKind::PagPassGpt);
        for (total, threshold) in [(10u64, 2u64), (37, 5), (100, 1), (250, 64)] {
            let config = DcGenConfig {
                threshold,
                ..DcGenConfig::new(total)
            };
            let report = DcGen::new(&model, config).run(&simple_patterns()).unwrap();
            assert!(
                report.passwords.len() as u64 <= total,
                "generated {} for budget {total} (threshold {threshold})",
                report.passwords.len()
            );
            assert_eq!(report.emitted, report.passwords.len() as u64);
        }
    }

    #[test]
    fn emitted_matches_passwords_without_sink() {
        let model = tiny_model(ModelKind::PagPassGpt);
        let config = DcGenConfig {
            threshold: 64,
            ..DcGenConfig::new(300)
        };
        let report = DcGen::new(&model, config).run(&simple_patterns()).unwrap();
        assert_eq!(report.emitted, report.passwords.len() as u64);
        assert!(!report.interrupted);
        assert!(report.failed_tasks.is_empty());
        assert_eq!(report.retries, 0);
    }

    #[test]
    fn sample_scheduler_emits_conforming_passwords_within_budget() {
        let model = tiny_model(ModelKind::PagPassGpt);
        let patterns = simple_patterns();
        let config = DcGenConfig {
            threshold: 64,
            scheduler: SchedulerKind::Sample,
            ..DcGenConfig::new(300)
        };
        let report = DcGen::new(&model, config).run(&patterns).unwrap();
        assert_eq!(report.expansions, 0, "plain sampling never divides");
        assert!(report.passwords.len() as u64 <= 300);
        assert!(!report.passwords.is_empty());
        let known: Vec<Pattern> = patterns.ranked().into_iter().map(|e| e.pattern).collect();
        for pw in &report.passwords {
            let p = Pattern::of_password(pw).unwrap();
            assert!(known.contains(&p), "{pw} has unexpected pattern {p}");
        }
    }

    #[test]
    fn sample_scheduler_is_deterministic_single_worker() {
        let model = tiny_model(ModelKind::PagPassGpt);
        let config = DcGenConfig {
            threshold: 32,
            seed: 4,
            scheduler: SchedulerKind::Sample,
            ..DcGenConfig::new(200)
        };
        let a = DcGen::new(&model, config.clone())
            .run(&simple_patterns())
            .unwrap();
        let b = DcGen::new(&model, config).run(&simple_patterns()).unwrap();
        assert_eq!(a.passwords, b.passwords);
    }
}
