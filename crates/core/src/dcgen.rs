use std::collections::{HashSet, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::time::{Duration, Instant};

use pagpass_nn::Rng;
use pagpass_patterns::{Pattern, PatternDistribution};
use pagpass_telemetry::{Counter, Field, Gauge, Histogram, Telemetry, DEPTH_BOUNDS};
use parking_lot::{Condvar, Mutex};
use serde::{Deserialize, Serialize};

use crate::control::{CancelToken, Deadline, FaultPlan, INJECTED_PANIC};
use crate::inference::InferenceSession;
use crate::journal::{DcGenJournal, JournalTask};
use crate::{CoreError, ModelKind, PasswordModel};

/// Configuration of a D&C-GEN run (paper Algorithm 1 plus the §III-C3
/// optimizations).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DcGenConfig {
    /// Total guess budget `N`. The run emits **at most** this many
    /// passwords; leaf quotas that would overshoot through rounding are
    /// truncated against the global budget.
    pub total: u64,
    /// Division threshold `T`: a subtask with a quota at or below this is
    /// executed instead of split. The paper sets 4 000 for its GPU; pick
    /// the batch size your hardware generates efficiently.
    pub threshold: u64,
    /// Sampling temperature inside leaf tasks.
    pub temperature: f32,
    /// RNG seed. Each task derives its own stream from `(seed, task id)`,
    /// so single-worker runs are byte-reproducible — including across an
    /// interrupt/resume cycle.
    pub seed: u64,
    /// Optional cap on how many top patterns receive budget; probabilities
    /// are renormalized over the kept set.
    pub max_patterns: Option<usize>,
    /// Ablation switch: allocate the budget uniformly across patterns
    /// instead of by their empirical probability.
    pub uniform_patterns: bool,
    /// Concurrent task workers (paper optimization 3). With `1` the run is
    /// fully deterministic.
    pub workers: usize,
    /// How many times a panicking task is retried before it is abandoned
    /// and recorded in [`DcGenReport::failed_tasks`].
    pub max_task_retries: u32,
    /// Completed tasks between journal snapshots when a journal path is
    /// given ([`DcGenOptions::journal`]); `0` journals only at the end of
    /// the run.
    pub journal_every: u64,
}

impl DcGenConfig {
    /// A sensible CPU-scale default: `N` guesses with threshold 256,
    /// single-worker for determinism, two retries per faulty task.
    #[must_use]
    pub fn new(total: u64) -> DcGenConfig {
        DcGenConfig {
            total,
            threshold: 256,
            temperature: 1.0,
            seed: 0,
            max_patterns: None,
            uniform_patterns: false,
            workers: 1,
            max_task_retries: 2,
            journal_every: 64,
        }
    }
}

/// A task abandoned after exhausting its retry budget. The run continues
/// without it; its quota is the upper bound on the guesses lost.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FailedTask {
    /// Pattern of the abandoned subtask (display form, e.g. `L6N2`).
    pub pattern: String,
    /// Password prefix the subtask was constrained to.
    pub prefix: String,
    /// Guess quota the subtask carried.
    pub quota: f64,
    /// Panic message of the final attempt.
    pub error: String,
}

/// Runtime options for a D&C-GEN run: everything that controls *how* the
/// run executes rather than *what* it computes.
#[derive(Default, Clone, Copy)]
pub struct DcGenOptions<'a> {
    /// Cooperative cancellation; workers drain at the next task boundary.
    pub cancel: Option<&'a CancelToken>,
    /// Wall-clock budget; the pool drains once it elapses.
    pub deadline: Option<Duration>,
    /// Sidecar journal path enabling [`DcGen::resume`] after interruption.
    pub journal: Option<&'a Path>,
    /// Deterministic fault injection (tests only).
    pub fault: Option<&'a FaultPlan>,
    /// Streaming output; when set, passwords go to the sink batch by batch
    /// and [`DcGenReport::passwords`] stays empty (bounded memory).
    pub sink: Option<&'a dyn PasswordSink>,
    /// Telemetry: metric registration plus structured events. `None` falls
    /// back to [`Telemetry::disabled`] — the run still counts into a silent
    /// registry, at the cost of a few relaxed atomics per task.
    pub telemetry: Option<&'a Telemetry>,
    /// Disables cross-task KV-cache prefix reuse: workers reset their
    /// inference session before every task and leaves prime per batch.
    /// Output is byte-identical either way (reuse is bit-exact); this
    /// exists so the paired bench can measure the uncached baseline.
    pub no_prefix_reuse: bool,
}

impl std::fmt::Debug for DcGenOptions<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DcGenOptions")
            .field("cancel", &self.cancel)
            .field("deadline", &self.deadline)
            .field("journal", &self.journal)
            .field("fault", &self.fault)
            .field("sink", &self.sink.map(|_| "dyn PasswordSink"))
            .field("telemetry", &self.telemetry.is_some())
            .field("no_prefix_reuse", &self.no_prefix_reuse)
            .finish()
    }
}

/// Streaming receiver for generated passwords.
///
/// Implementations must be `Sync`: worker threads emit concurrently
/// (serialized by the pool's internal lock, so calls never overlap, but
/// they do come from different threads).
pub trait PasswordSink: Sync {
    /// Accepts one leaf's worth of passwords.
    ///
    /// # Errors
    ///
    /// An error stops the run; the final journal still reflects every
    /// batch that was accepted.
    fn emit(&self, batch: &[String]) -> std::io::Result<()>;
}

/// Outcome of a D&C-GEN run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DcGenReport {
    /// Every generated password, leaf by leaf. Empty when a
    /// [`PasswordSink`] streamed them out instead; on resume, contains
    /// only passwords generated *after* the journal snapshot.
    pub passwords: Vec<String>,
    /// Number of leaf tasks executed.
    pub leaf_tasks: usize,
    /// Number of task expansions (model-guided divisions).
    pub expansions: usize,
    /// Subtasks dropped because their quota rounded below one password.
    pub deleted_tasks: usize,
    /// Patterns that received budget.
    pub patterns_used: usize,
    /// Total passwords emitted, including any counted by a resumed
    /// journal. Never exceeds [`DcGenConfig::total`].
    pub emitted: u64,
    /// Tasks abandoned after exhausting their retry budget.
    pub failed_tasks: Vec<FailedTask>,
    /// Task executions that panicked and were retried.
    pub retries: u64,
    /// Duplicate passwords observed within leaves (including any counted
    /// by a resumed journal). Subtasks are disjoint, so repeats can *only*
    /// occur inside one leaf: `leaf_duplicates / emitted` is the run's
    /// exact observed repeat rate, even when passwords streamed to a sink.
    #[serde(default)]
    pub leaf_duplicates: u64,
    /// KV-cache positions served from a worker's inference session instead
    /// of recomputed (splits reusing a parent's prompt, leaves broadcasting
    /// a primed prompt across batch rows). Purely an efficiency statistic:
    /// reuse is bit-exact and never changes which passwords are emitted.
    #[serde(default)]
    pub prefix_cache_hits: u64,
    /// Whether the run stopped early (cancellation or deadline) with tasks
    /// still pending. A journaled interrupted run can be continued with
    /// [`DcGen::resume`].
    pub interrupted: bool,
    /// Journal writes that failed; the run continues through these (the
    /// journal is an aid, not a dependency), but resume granularity
    /// degrades to the last successful snapshot.
    pub journal_errors: u64,
}

impl DcGenReport {
    fn empty() -> DcGenReport {
        DcGenReport {
            passwords: Vec::new(),
            leaf_tasks: 0,
            expansions: 0,
            deleted_tasks: 0,
            patterns_used: 0,
            emitted: 0,
            failed_tasks: Vec::new(),
            retries: 0,
            leaf_duplicates: 0,
            prefix_cache_hits: 0,
            interrupted: false,
            journal_errors: 0,
        }
    }
}

/// The D&C-GEN divide-and-conquer generator.
///
/// The guess budget is first divided across patterns by `Pr(P)` (capped at
/// each pattern's search space — optimization 2), then recursively across
/// next-character extensions using the model's conditional distribution,
/// until a subtask's quota is at most [`DcGenConfig::threshold`]. Leaves
/// sample their quota under the (pattern, prefix) constraint. Distinct
/// subtasks are disjoint by construction — they differ in pattern or in
/// prefix — so repeats can only arise *within* one leaf.
///
/// # Fault tolerance
///
/// Tasks run under a supervisor: workers park on a condition variable when
/// idle, every task executes inside a panic boundary, and a panicking task
/// is retried up to [`DcGenConfig::max_task_retries`] times before being
/// recorded in [`DcGenReport::failed_tasks`] — one bad subtask never kills
/// the run. Cooperative cancellation ([`CancelToken`]) and an optional
/// deadline drain the pool cleanly with partial results, and an optional
/// journal ([`DcGenOptions::journal`]) makes interrupted runs resumable via
/// [`DcGen::resume`].
///
/// # Examples
///
/// ```no_run
/// use pagpassgpt::{DcGen, DcGenConfig, ModelKind, PasswordModel};
/// use pagpass_patterns::PatternDistribution;
///
/// # fn demo(model: &PasswordModel, patterns: &PatternDistribution) {
/// let report = DcGen::new(model, DcGenConfig::new(10_000)).run(patterns).unwrap();
/// println!("{} passwords from {} leaves", report.passwords.len(), report.leaf_tasks);
/// # }
/// ```
#[derive(Debug)]
pub struct DcGen<'a> {
    model: &'a PasswordModel,
    config: DcGenConfig,
}

/// One pending subtask: a pattern index, a password prefix, a quota, and
/// its remaining retry budget. The id doubles as the task's RNG key, which
/// is what makes resumed runs byte-identical: a task samples the same
/// passwords no matter which worker picks it up or when.
#[derive(Debug, Clone)]
struct Task {
    id: u64,
    pattern_idx: usize,
    prefix: String,
    quota: f64,
    retries_left: u32,
}

/// Shared state of the worker pool, guarded by one mutex. Workers park on
/// the companion condvar when the queue is empty but siblings are still
/// executing (their splits may enqueue more work).
struct PoolState {
    queue: VecDeque<Task>,
    /// Tasks currently executing; journals persist them alongside the
    /// queue so an interrupted task is simply re-run on resume.
    in_flight: Vec<Task>,
    /// Budget reserved by leaves that have started (never exceeds
    /// `total`); reservations roll back if the leaf panics.
    reserved: u64,
    /// Passwords actually appended or sunk (including a resumed base).
    emitted: u64,
    completed: u64,
    next_id: u64,
    leaves: usize,
    expansions: usize,
    deleted: usize,
    patterns_used: usize,
    retries: u64,
    /// Within-leaf duplicate passwords observed so far.
    leaf_duplicates: u64,
    /// KV positions served from worker session caches so far.
    prefix_cache_hits: u64,
    failed: Vec<FailedTask>,
    passwords: Vec<String>,
    stopping: bool,
    journal_errors: u64,
    sink_error: Option<std::io::Error>,
}

/// Pre-created telemetry handles for the pool's hot path. Handles are
/// cheap `Arc`s over atomics; creating them once up front keeps the
/// registry's name map out of the per-task path entirely.
struct PoolMetrics {
    passwords: Counter,
    duplicates: Counter,
    tasks_completed: Counter,
    tasks_failed: Counter,
    retries: Counter,
    leaves: Counter,
    expansions: Counter,
    deleted: Counter,
    journal_writes: Counter,
    journal_errors: Counter,
    queue_depth: Gauge,
    workers_busy: Gauge,
    queue_depth_hist: Histogram,
    task_ms: Histogram,
    journal_ms: Histogram,
    gemm_calls: Counter,
    pool_threads: Gauge,
}

impl PoolMetrics {
    fn new(tel: &Telemetry) -> PoolMetrics {
        PoolMetrics {
            passwords: tel.counter("dcgen.passwords"),
            duplicates: tel.counter("dcgen.leaf_duplicates"),
            tasks_completed: tel.counter("dcgen.tasks_completed"),
            tasks_failed: tel.counter("dcgen.tasks_failed"),
            retries: tel.counter("dcgen.task_retries"),
            leaves: tel.counter("dcgen.leaf_tasks"),
            expansions: tel.counter("dcgen.expansions"),
            deleted: tel.counter("dcgen.deleted_tasks"),
            journal_writes: tel.counter("dcgen.journal_writes"),
            journal_errors: tel.counter("dcgen.journal_errors"),
            queue_depth: tel.gauge("dcgen.queue_depth"),
            workers_busy: tel.gauge("dcgen.workers_busy"),
            queue_depth_hist: tel
                .registry()
                .histogram("dcgen.queue_depth.hist", DEPTH_BOUNDS),
            task_ms: tel.histogram_ms("dcgen.task.ms"),
            journal_ms: tel.histogram_ms("dcgen.journal.ms"),
            gemm_calls: tel.counter("nn.gemm_calls"),
            pool_threads: tel.gauge("nn.pool_threads"),
        }
    }

    /// Refreshes the pool-shape gauges from the shared state.
    fn observe_pool(&self, s: &PoolState) {
        self.queue_depth.set(s.queue.len() as f64);
        self.workers_busy.set(s.in_flight.len() as f64);
    }
}

/// Duplicates inside one leaf's batch (the only place repeats can occur).
fn count_batch_duplicates(pwds: &[String]) -> u64 {
    let mut seen: HashSet<&str> = HashSet::with_capacity(pwds.len());
    pwds.iter().filter(|p| !seen.insert(p.as_str())).count() as u64
}

/// What one task execution produced (computed outside the lock).
enum TaskOutput {
    Leaf(Vec<String>),
    Split {
        children: Vec<(String, f64)>,
        deleted: usize,
    },
}

/// Derives a task's RNG seed from the run seed and the task id
/// (SplitMix64-style finalizer so nearby ids decorrelate).
fn task_seed(seed: u64, id: u64) -> u64 {
    let mut z = seed ^ id.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Extracts a printable message from a panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "task panicked".to_string()
    }
}

impl<'a> DcGen<'a> {
    /// Creates a generator borrowing a trained PagPassGPT model.
    #[must_use]
    pub fn new(model: &'a PasswordModel, config: DcGenConfig) -> DcGen<'a> {
        DcGen { model, config }
    }

    /// Runs Algorithm 1 against the pattern prior `patterns` (normally the
    /// training corpus's [`PatternDistribution`]).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::WrongKind`] for PassGPT models — D&C-GEN relies
    /// on pattern-conditioned prefixes, which only PagPassGPT offers.
    pub fn run(&self, patterns: &PatternDistribution) -> Result<DcGenReport, CoreError> {
        self.run_with(patterns, &DcGenOptions::default())
    }

    /// [`run`](Self::run) with runtime options: cancellation, a deadline,
    /// journaling, fault injection, and streaming output.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::WrongKind`] for PassGPT models and
    /// [`CoreError::Io`] when a [`PasswordSink`] write fails (the final
    /// journal, if configured, is still written first so the run can be
    /// resumed).
    pub fn run_with(
        &self,
        patterns: &PatternDistribution,
        opts: &DcGenOptions<'_>,
    ) -> Result<DcGenReport, CoreError> {
        if self.model.kind() != ModelKind::PagPassGpt {
            return Err(CoreError::WrongKind {
                expected: "PagPassGPT",
            });
        }
        let ranked = {
            let mut ranked = patterns.ranked();
            if let Some(cap) = self.config.max_patterns {
                ranked.truncate(cap);
            }
            ranked
        };
        let mass: f64 = if self.config.uniform_patterns {
            ranked.len() as f64
        } else {
            ranked.iter().map(|e| e.probability).sum()
        };
        if ranked.is_empty() || mass <= 0.0 || self.config.total == 0 {
            return Ok(DcGenReport::empty());
        }

        // Line 3: N_{P_i} = N · Pr(P_i), renormalized over the kept set and
        // capped at the pattern's search space (optimization 2).
        let pattern_list: Vec<Pattern> = ranked.iter().map(|e| e.pattern.clone()).collect();
        let mut initial: VecDeque<Task> = VecDeque::new();
        let mut deleted_up_front = 0usize;
        let mut patterns_used = 0usize;
        let mut next_id = 0u64;
        for (idx, entry) in ranked.iter().enumerate() {
            let pr = if self.config.uniform_patterns {
                1.0
            } else {
                entry.probability
            };
            let mut quota = self.config.total as f64 * pr / mass;
            quota = quota.min(entry.pattern.search_space());
            if quota < 1.0 {
                deleted_up_front += 1;
                continue;
            }
            patterns_used += 1;
            initial.push_back(Task {
                id: next_id,
                pattern_idx: idx,
                prefix: String::new(),
                quota,
                retries_left: self.config.max_task_retries,
            });
            next_id += 1;
        }

        let state = PoolState {
            queue: initial,
            in_flight: Vec::new(),
            reserved: 0,
            emitted: 0,
            completed: 0,
            next_id,
            leaves: 0,
            expansions: 0,
            deleted: deleted_up_front,
            patterns_used,
            retries: 0,
            leaf_duplicates: 0,
            prefix_cache_hits: 0,
            failed: Vec::new(),
            passwords: Vec::new(),
            stopping: false,
            journal_errors: 0,
            sink_error: None,
        };
        self.run_pool(state, &pattern_list, opts)
    }

    /// Continues an interrupted run from its journal.
    ///
    /// The journal carries the original configuration, the pattern table,
    /// and every task not yet completed; generation picks up from there.
    /// Passwords counted by the journal are *not* regenerated — truncate a
    /// partially-written output file to [`DcGenJournal::emitted`] lines and
    /// append this run's output. With `workers == 1` the combined output is
    /// byte-identical to the uninterrupted run.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::WrongKind`] for PassGPT models and
    /// [`CoreError::Io`] for sink failures, as [`run_with`](Self::run_with).
    pub fn resume(
        model: &'a PasswordModel,
        journal: &DcGenJournal,
        opts: &DcGenOptions<'_>,
    ) -> Result<DcGenReport, CoreError> {
        if model.kind() != ModelKind::PagPassGpt {
            return Err(CoreError::WrongKind {
                expected: "PagPassGPT",
            });
        }
        let config = DcGenConfig {
            total: journal.total,
            threshold: journal.threshold,
            temperature: journal.temperature,
            seed: journal.seed,
            max_patterns: None,
            uniform_patterns: false,
            workers: journal.workers,
            max_task_retries: journal.max_task_retries,
            journal_every: journal.journal_every,
        };
        let gen = DcGen { model, config };
        let queue: VecDeque<Task> = journal
            .tasks
            .iter()
            .map(|t| Task {
                id: t.id,
                pattern_idx: t.pattern_idx,
                prefix: t.prefix.clone(),
                quota: t.quota,
                retries_left: journal.max_task_retries,
            })
            .collect();
        let state = PoolState {
            queue,
            in_flight: Vec::new(),
            reserved: journal.emitted,
            emitted: journal.emitted,
            completed: journal.completed,
            next_id: journal.next_id,
            leaves: journal.leaves,
            expansions: journal.expansions,
            deleted: journal.deleted,
            patterns_used: journal.patterns_used,
            retries: journal.retries,
            leaf_duplicates: journal.leaf_duplicates,
            prefix_cache_hits: journal.prefix_cache_hits,
            failed: journal.failed.clone(),
            passwords: Vec::new(),
            stopping: false,
            journal_errors: 0,
            sink_error: None,
        };
        gen.run_pool(state, &journal.patterns, opts)
    }

    /// Supervised worker pool: executes every task in `state`, growing the
    /// tree as splits enqueue children, until the queue drains or a stop is
    /// requested.
    fn run_pool(
        &self,
        state: PoolState,
        pattern_list: &[Pattern],
        opts: &DcGenOptions<'_>,
    ) -> Result<DcGenReport, CoreError> {
        let threshold = self.config.threshold as f64;
        let total = self.config.total;
        // DET: the deadline is wall-clock by design — it bounds real run
        // time, not generated work, and never influences emitted passwords.
        // `Deadline::after` reads the monotonic clock exactly once, here;
        // per-task polls compare against that fixed instant.
        let deadline_at = opts.deadline.map(Deadline::after);
        let tel: &Telemetry = match opts.telemetry {
            Some(tel) => tel,
            None => Telemetry::disabled(),
        };
        let metrics = PoolMetrics::new(tel);
        metrics
            .pool_threads
            .set(pagpass_nn::pool::global().threads() as f64);
        // The GEMM counter is process-global; record this run's delta so
        // the metric covers exactly this run.
        let gemm_at_start = pagpass_nn::gemm_calls();
        let run_timer = tel.timer("dcgen.run");
        tel.event(
            "progress",
            "dcgen.start",
            &[
                ("total", Field::U64(total)),
                ("threshold", Field::U64(self.config.threshold)),
                ("workers", Field::U64(self.config.workers.max(1) as u64)),
                ("queued", Field::U64(state.queue.len() as u64)),
                ("resumed_emitted", Field::U64(state.emitted)),
            ],
        );
        let state = Mutex::new(state);
        let work_ready = Condvar::new();
        let workers = self.config.workers.max(1);

        std::thread::scope(|scope| {
            for _ in 0..workers {
                let state = &state;
                let work_ready = &work_ready;
                let metrics = &metrics;
                scope.spawn(move || {
                    // One KV-cached session per worker, threaded through
                    // every split and leaf this worker executes. FIFO order
                    // means consecutive tasks are usually siblings, so the
                    // session's seek pays ~one token per split instead of
                    // the whole prompt.
                    let mut session = InferenceSession::with_telemetry(self.model, tel);
                    loop {
                        // ---- acquire: take a task or park until one appears.
                        let (task, leaf_n) = {
                            let mut s = state.lock();
                            loop {
                                if s.stopping {
                                    return;
                                }
                                let cancelled = opts.cancel.is_some_and(CancelToken::is_cancelled)
                                // DET: deadline check only; see deadline_at.
                                || deadline_at.is_some_and(|d| d.expired());
                                if cancelled {
                                    s.stopping = true;
                                    work_ready.notify_all();
                                    return;
                                }
                                if let Some(task) = s.queue.pop_front() {
                                    let pattern = &pattern_list[task.pattern_idx];
                                    let is_leaf = task.quota <= threshold
                                        || task.prefix.chars().count() == pattern.char_len();
                                    // Leaves reserve against the global budget
                                    // up front, so the run stops at exactly
                                    // `total` no matter how quotas rounded.
                                    let leaf_n = is_leaf.then(|| {
                                        let want = task.quota.round().max(1.0) as u64;
                                        let n = want.min(total - s.reserved);
                                        s.reserved += n;
                                        n as usize
                                    });
                                    s.in_flight.push(task.clone());
                                    metrics.observe_pool(&s);
                                    metrics.queue_depth_hist.record(s.queue.len() as f64);
                                    break (task, leaf_n);
                                }
                                if s.in_flight.is_empty() {
                                    // Nothing queued and nobody executing:
                                    // the tree is exhausted.
                                    s.stopping = true;
                                    work_ready.notify_all();
                                    return;
                                }
                                // Parked: a sibling's split may publish work,
                                // or a stop may arrive. The timeout bounds how
                                // long a parked worker can miss a deadline.
                                work_ready.wait_for(&mut s, Duration::from_millis(20));
                            }
                        };

                        // ---- execute outside the lock, inside a panic boundary.
                        let pattern = &pattern_list[task.pattern_idx];
                        if opts.no_prefix_reuse {
                            // Bench baseline: forget everything between tasks.
                            session.reset();
                        }
                        let reused_before = session.reused_tokens();
                        // DET: telemetry timing only; feeds a histogram, never
                        // the generation path.
                        let task_started = Instant::now();
                        let caught =
                            catch_unwind(AssertUnwindSafe(|| -> Result<TaskOutput, CoreError> {
                                if opts.fault.is_some_and(|f| f.take_task_panic(task.id)) {
                                    panic!("{INJECTED_PANIC}");
                                }
                                if let Some(n) = leaf_n {
                                    // Leaf: execute (Algorithm 1, lines 5 & 13).
                                    let pwds = if n == 0 {
                                        Vec::new()
                                    } else {
                                        let mut rng =
                                            Rng::seed_from(task_seed(self.config.seed, task.id));
                                        if opts.no_prefix_reuse {
                                            // Per-row prompt priming, as before
                                            // the inference session existed.
                                            self.model.generate_leaf(
                                                pattern,
                                                &task.prefix,
                                                n,
                                                self.config.temperature,
                                                &mut rng,
                                            )?
                                        } else {
                                            session.generate_leaf(
                                                pattern,
                                                &task.prefix,
                                                n,
                                                self.config.temperature,
                                                &mut rng,
                                            )?
                                        }
                                    };
                                    Ok(TaskOutput::Leaf(pwds))
                                } else {
                                    // Split on the next character (lines 15–20).
                                    let (ids, probs) =
                                        session.next_char_distribution(pattern, &task.prefix)?;
                                    let vocab = self.model.tokenizer().vocab();
                                    let mut children = Vec::new();
                                    let mut deleted = 0usize;
                                    for (&id, &p) in ids.iter().zip(&probs) {
                                        let child_quota = task.quota * p;
                                        if child_quota < 1.0 {
                                            deleted += 1;
                                            continue;
                                        }
                                        let ch = match vocab.token_of(id) {
                                            Some(pagpass_tokenizer::Token::Char(c)) => c,
                                            _ => continue,
                                        };
                                        let mut prefix = task.prefix.clone();
                                        prefix.push(ch);
                                        children.push((prefix, child_quota));
                                    }
                                    Ok(TaskOutput::Split { children, deleted })
                                }
                            }));
                        // A task failing with a CoreError (bad prefix, unknown
                        // character) takes the same retry/abandon path as a
                        // panic: supervision does not care how a task died.
                        let outcome: Result<TaskOutput, String> = match caught {
                            Ok(Ok(out)) => Ok(out),
                            Ok(Err(e)) => Err(e.to_string()),
                            Err(payload) => Err(panic_message(payload.as_ref())),
                        };
                        let task_reuse = session.reused_tokens() - reused_before;

                        metrics
                            .task_ms
                            .record(task_started.elapsed().as_secs_f64() * 1e3);
                        // Duplicate counting hashes the whole batch — do it
                        // before taking the lock.
                        let batch_dups = match &outcome {
                            Ok(TaskOutput::Leaf(pwds)) => count_batch_duplicates(pwds),
                            _ => 0,
                        };

                        // ---- commit under the lock.
                        let mut s = state.lock();
                        s.prefix_cache_hits += task_reuse;
                        if let Some(pos) = s.in_flight.iter().position(|t| t.id == task.id) {
                            s.in_flight.remove(pos);
                        }
                        match outcome {
                            Ok(TaskOutput::Leaf(pwds)) => {
                                s.leaves += 1;
                                s.emitted += pwds.len() as u64;
                                if let Some(sink) = opts.sink {
                                    if let Err(e) = sink.emit(&pwds) {
                                        s.emitted -= pwds.len() as u64;
                                        s.reserved -= leaf_n.unwrap_or(0) as u64;
                                        s.sink_error = Some(e);
                                        s.stopping = true;
                                        work_ready.notify_all();
                                        return;
                                    }
                                }
                                s.leaf_duplicates += batch_dups;
                                metrics.leaves.inc();
                                metrics.passwords.add(pwds.len() as u64);
                                metrics.duplicates.add(batch_dups);
                                if opts.sink.is_none() {
                                    s.passwords.extend(pwds);
                                }
                                self.finish_task(&mut s, pattern_list, opts, metrics);
                            }
                            Ok(TaskOutput::Split { children, deleted }) => {
                                s.expansions += 1;
                                s.deleted += deleted;
                                metrics.expansions.inc();
                                metrics.deleted.add(deleted as u64);
                                for (prefix, quota) in children {
                                    let id = s.next_id;
                                    s.next_id += 1;
                                    s.queue.push_back(Task {
                                        id,
                                        pattern_idx: task.pattern_idx,
                                        prefix,
                                        quota,
                                        retries_left: self.config.max_task_retries,
                                    });
                                }
                                self.finish_task(&mut s, pattern_list, opts, metrics);
                                work_ready.notify_all();
                            }
                            Err(message) => {
                                // Supervision: retry with the same id (same RNG
                                // stream), or abandon into `failed`.
                                if let Some(n) = leaf_n {
                                    s.reserved -= n as u64;
                                }
                                if task.retries_left > 0 {
                                    s.retries += 1;
                                    metrics.retries.inc();
                                    s.queue.push_back(Task {
                                        retries_left: task.retries_left - 1,
                                        ..task
                                    });
                                    work_ready.notify_all();
                                } else {
                                    metrics.tasks_failed.inc();
                                    s.failed.push(FailedTask {
                                        pattern: pattern.to_string(),
                                        prefix: task.prefix.clone(),
                                        quota: task.quota,
                                        error: message,
                                    });
                                }
                            }
                        }
                        metrics.observe_pool(&s);
                    }
                });
            }
        });

        let mut s = state.into_inner();
        let interrupted = !s.queue.is_empty();
        if let Some(path) = opts.journal {
            self.write_journal(&mut s, pattern_list, path, opts.fault, &metrics);
        }
        metrics.observe_pool(&s);
        metrics
            .gemm_calls
            .add(pagpass_nn::gemm_calls().saturating_sub(gemm_at_start));
        drop(run_timer); // records dcgen.run.ms before the final event
        tel.event(
            "progress",
            "dcgen.done",
            &[
                ("emitted", Field::U64(s.emitted)),
                ("leaves", Field::U64(s.leaves as u64)),
                ("expansions", Field::U64(s.expansions as u64)),
                ("failed_tasks", Field::U64(s.failed.len() as u64)),
                ("prefix_cache_hits", Field::U64(s.prefix_cache_hits)),
                ("interrupted", Field::Bool(interrupted)),
            ],
        );
        if let Some(e) = s.sink_error {
            return Err(CoreError::Io(e));
        }
        Ok(DcGenReport {
            passwords: s.passwords,
            leaf_tasks: s.leaves,
            expansions: s.expansions,
            deleted_tasks: s.deleted,
            patterns_used: s.patterns_used,
            emitted: s.emitted,
            failed_tasks: s.failed,
            retries: s.retries,
            leaf_duplicates: s.leaf_duplicates,
            prefix_cache_hits: s.prefix_cache_hits,
            interrupted,
            journal_errors: s.journal_errors,
        })
    }

    /// Post-completion bookkeeping: success counter, periodic journal,
    /// injected kill point.
    fn finish_task(
        &self,
        s: &mut PoolState,
        pattern_list: &[Pattern],
        opts: &DcGenOptions<'_>,
        metrics: &PoolMetrics,
    ) {
        s.completed += 1;
        metrics.tasks_completed.inc();
        if let Some(path) = opts.journal {
            let every = self.config.journal_every;
            if every > 0 && s.completed.is_multiple_of(every) {
                self.write_journal(s, pattern_list, path, opts.fault, metrics);
            }
        }
        if opts.fault.is_some_and(|f| f.should_cancel(s.completed)) {
            s.stopping = true;
        }
    }

    /// Snapshots `s` to the journal file. Failures are counted, not fatal:
    /// the journal improves crash recovery but must never take down a run
    /// that is otherwise producing passwords.
    fn write_journal(
        &self,
        s: &mut PoolState,
        pattern_list: &[Pattern],
        path: &Path,
        fault: Option<&FaultPlan>,
        metrics: &PoolMetrics,
    ) {
        let journal = DcGenJournal {
            total: self.config.total,
            threshold: self.config.threshold,
            temperature: self.config.temperature,
            seed: self.config.seed,
            workers: self.config.workers,
            max_task_retries: self.config.max_task_retries,
            journal_every: self.config.journal_every,
            patterns: pattern_list.to_vec(),
            emitted: s.emitted,
            completed: s.completed,
            leaves: s.leaves,
            expansions: s.expansions,
            deleted: s.deleted,
            patterns_used: s.patterns_used,
            retries: s.retries,
            leaf_duplicates: s.leaf_duplicates,
            prefix_cache_hits: s.prefix_cache_hits,
            next_id: s.next_id,
            tasks: s
                .queue
                .iter()
                .chain(s.in_flight.iter())
                .map(|t| JournalTask {
                    id: t.id,
                    pattern_idx: t.pattern_idx,
                    prefix: t.prefix.clone(),
                    quota: t.quota,
                })
                .collect(),
            failed: s.failed.clone(),
        };
        let injected = fault.is_some_and(FaultPlan::take_write_failure);
        // DET: telemetry timing only; journal contents stay deterministic.
        let started = Instant::now();
        if injected || journal.save(path).is_err() {
            s.journal_errors += 1;
            metrics.journal_errors.inc();
        } else {
            metrics.journal_writes.inc();
        }
        metrics
            .journal_ms
            .record(started.elapsed().as_secs_f64() * 1e3);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pagpass_nn::GptConfig;
    use pagpass_tokenizer::VOCAB_SIZE;

    fn tiny_model(kind: ModelKind) -> PasswordModel {
        PasswordModel::new(
            kind,
            GptConfig {
                vocab_size: VOCAB_SIZE,
                ctx_len: 32,
                dim: 16,
                n_layers: 1,
                n_heads: 2,
            },
            5,
        )
    }

    fn simple_patterns() -> PatternDistribution {
        PatternDistribution::from_passwords(["ab12", "cd34", "ef56", "xy9", "qqq1"].iter().copied())
    }

    #[test]
    fn rejects_passgpt_models() {
        let model = tiny_model(ModelKind::PassGpt);
        let err = DcGen::new(&model, DcGenConfig::new(100)).run(&simple_patterns());
        assert!(matches!(err, Err(CoreError::WrongKind { .. })));
    }

    #[test]
    fn small_budget_executes_leaves_directly() {
        let model = tiny_model(ModelKind::PagPassGpt);
        let config = DcGenConfig {
            threshold: 1_000,
            ..DcGenConfig::new(100)
        };
        let report = DcGen::new(&model, config).run(&simple_patterns()).unwrap();
        assert_eq!(report.expansions, 0, "all quotas are below the threshold");
        assert!(report.leaf_tasks > 0);
        assert!(!report.passwords.is_empty());
        // Budget conservation up to rounding: within 2x of N.
        let n = report.passwords.len() as u64;
        assert!((50..=200).contains(&n), "generated {n} for budget 100");
    }

    #[test]
    fn large_budget_forces_divisions() {
        let model = tiny_model(ModelKind::PagPassGpt);
        let config = DcGenConfig {
            threshold: 50,
            ..DcGenConfig::new(2_000)
        };
        let report = DcGen::new(&model, config).run(&simple_patterns()).unwrap();
        assert!(report.expansions > 0, "quotas above T must split");
    }

    #[test]
    fn all_outputs_conform_to_some_requested_pattern() {
        let model = tiny_model(ModelKind::PagPassGpt);
        let patterns = simple_patterns();
        let config = DcGenConfig {
            threshold: 64,
            ..DcGenConfig::new(500)
        };
        let report = DcGen::new(&model, config).run(&patterns).unwrap();
        let known: Vec<Pattern> = patterns.ranked().into_iter().map(|e| e.pattern).collect();
        for pw in &report.passwords {
            let p = Pattern::of_password(pw).unwrap();
            assert!(known.contains(&p), "{pw} has unexpected pattern {p}");
        }
    }

    #[test]
    fn single_worker_is_deterministic() {
        let model = tiny_model(ModelKind::PagPassGpt);
        let config = DcGenConfig {
            threshold: 64,
            seed: 9,
            ..DcGenConfig::new(300)
        };
        let a = DcGen::new(&model, config.clone())
            .run(&simple_patterns())
            .unwrap();
        let b = DcGen::new(&model, config).run(&simple_patterns()).unwrap();
        assert_eq!(a.passwords, b.passwords);
    }

    #[test]
    fn multi_worker_run_completes_with_same_volume() {
        let model = tiny_model(ModelKind::PagPassGpt);
        let single = DcGenConfig {
            threshold: 64,
            workers: 1,
            ..DcGenConfig::new(400)
        };
        let multi = DcGenConfig {
            threshold: 64,
            workers: 4,
            ..DcGenConfig::new(400)
        };
        let a = DcGen::new(&model, single).run(&simple_patterns()).unwrap();
        let b = DcGen::new(&model, multi).run(&simple_patterns()).unwrap();
        assert_eq!(
            a.leaf_tasks, b.leaf_tasks,
            "task tree is schedule-independent"
        );
        assert_eq!(a.passwords.len(), b.passwords.len());
    }

    #[test]
    fn search_space_cap_limits_small_patterns() {
        // Pattern N1 admits only 10 passwords; a huge budget must be capped.
        let model = tiny_model(ModelKind::PagPassGpt);
        let patterns = PatternDistribution::from_passwords(["7"].iter().copied());
        let config = DcGenConfig {
            threshold: 1_000_000,
            ..DcGenConfig::new(100_000)
        };
        let report = DcGen::new(&model, config).run(&patterns).unwrap();
        assert!(
            report.passwords.len() <= 10 * 2,
            "cap at search space, got {}",
            report.passwords.len()
        );
    }

    #[test]
    fn zero_budget_and_empty_priors_are_harmless() {
        let model = tiny_model(ModelKind::PagPassGpt);
        let empty = PatternDistribution::new();
        let r1 = DcGen::new(&model, DcGenConfig::new(0))
            .run(&simple_patterns())
            .unwrap();
        let r2 = DcGen::new(&model, DcGenConfig::new(100))
            .run(&empty)
            .unwrap();
        assert!(r1.passwords.is_empty());
        assert!(r2.passwords.is_empty());
    }

    #[test]
    fn max_patterns_caps_and_renormalizes() {
        let model = tiny_model(ModelKind::PagPassGpt);
        let config = DcGenConfig {
            max_patterns: Some(1),
            threshold: 1_000,
            ..DcGenConfig::new(100)
        };
        let report = DcGen::new(&model, config).run(&simple_patterns()).unwrap();
        assert_eq!(report.patterns_used, 1);
        // All budget flows to the one pattern.
        assert!(report.passwords.len() >= 80);
    }

    #[test]
    fn never_exceeds_global_budget() {
        // Leaf quotas round up (`.max(1.0)`), so without the reservation
        // cap many small leaves overshoot N. Exercise several shapes.
        let model = tiny_model(ModelKind::PagPassGpt);
        for (total, threshold) in [(10u64, 2u64), (37, 5), (100, 1), (250, 64)] {
            let config = DcGenConfig {
                threshold,
                ..DcGenConfig::new(total)
            };
            let report = DcGen::new(&model, config).run(&simple_patterns()).unwrap();
            assert!(
                report.passwords.len() as u64 <= total,
                "generated {} for budget {total} (threshold {threshold})",
                report.passwords.len()
            );
            assert_eq!(report.emitted, report.passwords.len() as u64);
        }
    }

    #[test]
    fn emitted_matches_passwords_without_sink() {
        let model = tiny_model(ModelKind::PagPassGpt);
        let config = DcGenConfig {
            threshold: 64,
            ..DcGenConfig::new(300)
        };
        let report = DcGen::new(&model, config).run(&simple_patterns()).unwrap();
        assert_eq!(report.emitted, report.passwords.len() as u64);
        assert!(!report.interrupted);
        assert!(report.failed_tasks.is_empty());
        assert_eq!(report.retries, 0);
    }
}
