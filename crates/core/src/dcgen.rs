use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};

use pagpass_nn::Rng;
use pagpass_patterns::{Pattern, PatternDistribution};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use crate::{CoreError, ModelKind, PasswordModel};

/// Configuration of a D&C-GEN run (paper Algorithm 1 plus the §III-C3
/// optimizations).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DcGenConfig {
    /// Total guess budget `N`.
    pub total: u64,
    /// Division threshold `T`: a subtask with a quota at or below this is
    /// executed instead of split. The paper sets 4 000 for its GPU; pick
    /// the batch size your hardware generates efficiently.
    pub threshold: u64,
    /// Sampling temperature inside leaf tasks.
    pub temperature: f32,
    /// RNG seed (exact reproducibility requires `workers == 1`).
    pub seed: u64,
    /// Optional cap on how many top patterns receive budget; probabilities
    /// are renormalized over the kept set.
    pub max_patterns: Option<usize>,
    /// Ablation switch: allocate the budget uniformly across patterns
    /// instead of by their empirical probability.
    pub uniform_patterns: bool,
    /// Concurrent task workers (paper optimization 3). With `1` the run is
    /// fully deterministic.
    pub workers: usize,
}

impl DcGenConfig {
    /// A sensible CPU-scale default: `N` guesses with threshold 256,
    /// single-worker for determinism.
    #[must_use]
    pub fn new(total: u64) -> DcGenConfig {
        DcGenConfig {
            total,
            threshold: 256,
            temperature: 1.0,
            seed: 0,
            max_patterns: None,
            uniform_patterns: false,
            workers: 1,
        }
    }
}

/// Outcome of a D&C-GEN run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DcGenReport {
    /// Every generated password, leaf by leaf.
    pub passwords: Vec<String>,
    /// Number of leaf tasks executed.
    pub leaf_tasks: usize,
    /// Number of task expansions (model-guided divisions).
    pub expansions: usize,
    /// Subtasks dropped because their quota rounded below one password.
    pub deleted_tasks: usize,
    /// Patterns that received budget.
    pub patterns_used: usize,
}

/// The D&C-GEN divide-and-conquer generator.
///
/// The guess budget is first divided across patterns by `Pr(P)` (capped at
/// each pattern's search space — optimization 2), then recursively across
/// next-character extensions using the model's conditional distribution,
/// until a subtask's quota is at most [`DcGenConfig::threshold`]. Leaves
/// sample their quota under the (pattern, prefix) constraint. Distinct
/// subtasks are disjoint by construction — they differ in pattern or in
/// prefix — so repeats can only arise *within* one leaf.
///
/// # Examples
///
/// ```no_run
/// use pagpassgpt::{DcGen, DcGenConfig, ModelKind, PasswordModel};
/// use pagpass_patterns::PatternDistribution;
///
/// # fn demo(model: &PasswordModel, patterns: &PatternDistribution) {
/// let report = DcGen::new(model, DcGenConfig::new(10_000)).run(patterns).unwrap();
/// println!("{} passwords from {} leaves", report.passwords.len(), report.leaf_tasks);
/// # }
/// ```
#[derive(Debug)]
pub struct DcGen<'a> {
    model: &'a PasswordModel,
    config: DcGenConfig,
}

/// One pending subtask: a pattern index, a password prefix, and a quota.
#[derive(Debug, Clone)]
struct Task {
    pattern_idx: usize,
    prefix: String,
    quota: f64,
}

impl<'a> DcGen<'a> {
    /// Creates a generator borrowing a trained PagPassGPT model.
    #[must_use]
    pub fn new(model: &'a PasswordModel, config: DcGenConfig) -> DcGen<'a> {
        DcGen { model, config }
    }

    /// Runs Algorithm 1 against the pattern prior `patterns` (normally the
    /// training corpus's [`PatternDistribution`]).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::WrongKind`] for PassGPT models — D&C-GEN relies
    /// on pattern-conditioned prefixes, which only PagPassGPT offers.
    pub fn run(&self, patterns: &PatternDistribution) -> Result<DcGenReport, CoreError> {
        if self.model.kind() != ModelKind::PagPassGpt {
            return Err(CoreError::WrongKind { expected: "PagPassGPT" });
        }
        let ranked = {
            let mut ranked = patterns.ranked();
            if let Some(cap) = self.config.max_patterns {
                ranked.truncate(cap);
            }
            ranked
        };
        let mass: f64 = if self.config.uniform_patterns {
            ranked.len() as f64
        } else {
            ranked.iter().map(|e| e.probability).sum()
        };
        let mut report = DcGenReport {
            passwords: Vec::new(),
            leaf_tasks: 0,
            expansions: 0,
            deleted_tasks: 0,
            patterns_used: 0,
        };
        if ranked.is_empty() || mass <= 0.0 || self.config.total == 0 {
            return Ok(report);
        }

        // Line 3: N_{P_i} = N · Pr(P_i), renormalized over the kept set and
        // capped at the pattern's search space (optimization 2).
        let mut initial: Vec<Task> = Vec::new();
        let pattern_list: Vec<Pattern> = ranked.iter().map(|e| e.pattern.clone()).collect();
        for (idx, entry) in ranked.iter().enumerate() {
            let pr = if self.config.uniform_patterns { 1.0 } else { entry.probability };
            let mut quota = self.config.total as f64 * pr / mass;
            quota = quota.min(entry.pattern.search_space());
            if quota < 1.0 {
                report.deleted_tasks += 1;
                continue;
            }
            report.patterns_used += 1;
            initial.push(Task { pattern_idx: idx, prefix: String::new(), quota });
        }

        let threshold = self.config.threshold as f64;
        let queue: Mutex<VecDeque<Task>> = Mutex::new(initial.into());
        let pending = AtomicUsize::new(queue.lock().len());
        let results: Mutex<Vec<String>> = Mutex::new(Vec::new());
        let stats: Mutex<(usize, usize, usize)> = Mutex::new((0, 0, 0)); // leaves, expansions, deleted

        let workers = self.config.workers.max(1);
        crossbeam::thread::scope(|scope| {
            for w in 0..workers {
                let queue = &queue;
                let pending = &pending;
                let results = &results;
                let stats = &stats;
                let patterns = &pattern_list;
                scope.spawn(move |_| {
                    let mut rng = Rng::seed_from(self.config.seed.wrapping_add(w as u64 * 0x9e3779b9));
                    loop {
                        let task = queue.lock().pop_front();
                        let Some(task) = task else {
                            if pending.load(Ordering::SeqCst) == 0 {
                                break;
                            }
                            std::thread::yield_now();
                            continue;
                        };
                        let pattern = &patterns[task.pattern_idx];
                        if task.quota <= threshold
                            || task.prefix.chars().count() == pattern.char_len()
                        {
                            // Leaf: execute (Algorithm 1, lines 5 & 13).
                            let n = task.quota.round().max(1.0) as usize;
                            let pwds = self.model.generate_leaf(
                                pattern,
                                &task.prefix,
                                n,
                                self.config.temperature,
                                &mut rng,
                            );
                            results.lock().extend(pwds);
                            stats.lock().0 += 1;
                        } else {
                            // Split on the next character (lines 15–20).
                            let (ids, probs) =
                                self.model.next_char_distribution(pattern, &task.prefix);
                            let vocab = self.model.tokenizer().vocab();
                            let mut children = Vec::new();
                            let mut deleted = 0usize;
                            for (&id, &p) in ids.iter().zip(&probs) {
                                let child_quota = task.quota * p;
                                if child_quota < 1.0 {
                                    deleted += 1;
                                    continue;
                                }
                                let ch = match vocab.token_of(id) {
                                    Some(pagpass_tokenizer::Token::Char(c)) => c,
                                    _ => continue,
                                };
                                let mut prefix = task.prefix.clone();
                                prefix.push(ch);
                                children.push(Task {
                                    pattern_idx: task.pattern_idx,
                                    prefix,
                                    quota: child_quota,
                                });
                            }
                            {
                                let mut s = stats.lock();
                                s.1 += 1;
                                s.2 += deleted;
                            }
                            pending.fetch_add(children.len(), Ordering::SeqCst);
                            queue.lock().extend(children);
                        }
                        pending.fetch_sub(1, Ordering::SeqCst);
                    }
                });
            }
        })
        .expect("worker threads must not panic");

        let (leaves, expansions, deleted) = *stats.lock();
        report.leaf_tasks = leaves;
        report.expansions = expansions;
        report.deleted_tasks += deleted;
        report.passwords = results.into_inner();
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pagpass_nn::GptConfig;
    use pagpass_tokenizer::VOCAB_SIZE;

    fn tiny_model(kind: ModelKind) -> PasswordModel {
        PasswordModel::new(
            kind,
            GptConfig { vocab_size: VOCAB_SIZE, ctx_len: 32, dim: 16, n_layers: 1, n_heads: 2 },
            5,
        )
    }

    fn simple_patterns() -> PatternDistribution {
        PatternDistribution::from_passwords(
            ["ab12", "cd34", "ef56", "xy9", "qqq1"].iter().copied(),
        )
    }

    #[test]
    fn rejects_passgpt_models() {
        let model = tiny_model(ModelKind::PassGpt);
        let err = DcGen::new(&model, DcGenConfig::new(100)).run(&simple_patterns());
        assert!(matches!(err, Err(CoreError::WrongKind { .. })));
    }

    #[test]
    fn small_budget_executes_leaves_directly() {
        let model = tiny_model(ModelKind::PagPassGpt);
        let config = DcGenConfig { threshold: 1_000, ..DcGenConfig::new(100) };
        let report = DcGen::new(&model, config).run(&simple_patterns()).unwrap();
        assert_eq!(report.expansions, 0, "all quotas are below the threshold");
        assert!(report.leaf_tasks > 0);
        assert!(!report.passwords.is_empty());
        // Budget conservation up to rounding: within 2x of N.
        let n = report.passwords.len() as u64;
        assert!((50..=200).contains(&n), "generated {n} for budget 100");
    }

    #[test]
    fn large_budget_forces_divisions() {
        let model = tiny_model(ModelKind::PagPassGpt);
        let config = DcGenConfig { threshold: 50, ..DcGenConfig::new(2_000) };
        let report = DcGen::new(&model, config).run(&simple_patterns()).unwrap();
        assert!(report.expansions > 0, "quotas above T must split");
    }

    #[test]
    fn all_outputs_conform_to_some_requested_pattern() {
        let model = tiny_model(ModelKind::PagPassGpt);
        let patterns = simple_patterns();
        let config = DcGenConfig { threshold: 64, ..DcGenConfig::new(500) };
        let report = DcGen::new(&model, config).run(&patterns).unwrap();
        let known: Vec<Pattern> = patterns.ranked().into_iter().map(|e| e.pattern).collect();
        for pw in &report.passwords {
            let p = Pattern::of_password(pw).unwrap();
            assert!(known.contains(&p), "{pw} has unexpected pattern {p}");
        }
    }

    #[test]
    fn single_worker_is_deterministic() {
        let model = tiny_model(ModelKind::PagPassGpt);
        let config = DcGenConfig { threshold: 64, seed: 9, ..DcGenConfig::new(300) };
        let a = DcGen::new(&model, config.clone()).run(&simple_patterns()).unwrap();
        let b = DcGen::new(&model, config).run(&simple_patterns()).unwrap();
        assert_eq!(a.passwords, b.passwords);
    }

    #[test]
    fn multi_worker_run_completes_with_same_volume() {
        let model = tiny_model(ModelKind::PagPassGpt);
        let single = DcGenConfig { threshold: 64, workers: 1, ..DcGenConfig::new(400) };
        let multi = DcGenConfig { threshold: 64, workers: 4, ..DcGenConfig::new(400) };
        let a = DcGen::new(&model, single).run(&simple_patterns()).unwrap();
        let b = DcGen::new(&model, multi).run(&simple_patterns()).unwrap();
        assert_eq!(a.leaf_tasks, b.leaf_tasks, "task tree is schedule-independent");
        assert_eq!(a.passwords.len(), b.passwords.len());
    }

    #[test]
    fn search_space_cap_limits_small_patterns() {
        // Pattern N1 admits only 10 passwords; a huge budget must be capped.
        let model = tiny_model(ModelKind::PagPassGpt);
        let patterns = PatternDistribution::from_passwords(["7"].iter().copied());
        let config = DcGenConfig { threshold: 1_000_000, ..DcGenConfig::new(100_000) };
        let report = DcGen::new(&model, config).run(&patterns).unwrap();
        assert!(report.passwords.len() <= 10 * 2, "cap at search space, got {}", report.passwords.len());
    }

    #[test]
    fn zero_budget_and_empty_priors_are_harmless() {
        let model = tiny_model(ModelKind::PagPassGpt);
        let empty = PatternDistribution::new();
        let r1 = DcGen::new(&model, DcGenConfig::new(0)).run(&simple_patterns()).unwrap();
        let r2 = DcGen::new(&model, DcGenConfig::new(100)).run(&empty).unwrap();
        assert!(r1.passwords.is_empty());
        assert!(r2.passwords.is_empty());
    }

    #[test]
    fn max_patterns_caps_and_renormalizes() {
        let model = tiny_model(ModelKind::PagPassGpt);
        let config = DcGenConfig { max_patterns: Some(1), threshold: 1_000, ..DcGenConfig::new(100) };
        let report = DcGen::new(&model, config).run(&simple_patterns()).unwrap();
        assert_eq!(report.patterns_used, 1);
        // All budget flows to the one pattern.
        assert!(report.passwords.len() >= 80);
    }
}
