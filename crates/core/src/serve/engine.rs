//! Scoring engine: workers pull admitted requests off the queue, batch
//! them into single forwards, and answer each request exactly once.
//!
//! # Robustness contract
//!
//! * **Exactly-one-response**: every admitted [`ScoreRequest`] answers its
//!   client exactly once, enforced structurally — the responder is an
//!   `Option` consumed by [`ScoreRequest::respond`], and a `Drop` backstop
//!   answers (and counts `serve.lost`) if a code path ever leaks a request
//!   without responding. Post-drain, `admitted == completed + shed +
//!   failed` must reconcile; a non-zero `serve.lost` is always a bug.
//! * **Shedding**: requests whose deadline expired or whose connection
//!   died are answered [`ScoreOutcome::Shed`] *before* they occupy a
//!   forward slot, so a deadline storm degrades throughput instead of
//!   wasting it.
//! * **Panic isolation**: a panic while scoring a batch (a poisoned
//!   request, an injected fault) is caught per-wave; the wave is split in
//!   half and re-scored, isolating the poisoned request in O(log batch)
//!   re-executions. Only the singleton that still panics burns a retry;
//!   its neighbours are re-scored bit-identically (the decode path is
//!   row-independent, see [`InferenceSession::score_batch`]) and never
//!   lose their slot. The worker thread itself never dies.
//! * **Degraded mode**: sustained deadline misses halve the effective
//!   batch ceiling (smaller waves finish sooner); sustained clean waves
//!   double it back toward the configured maximum.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use pagpass_telemetry::{
    next_span_id, next_trace_id, wall_clock_ms, Counter, Field, Gauge, Histogram, Telemetry,
    TraceCtx, TraceRecorder, DEPTH_BOUNDS, LATENCY_MS_BOUNDS,
};
use parking_lot::Mutex;

use crate::control::{CancelToken, Deadline, FaultPlan};
use crate::inference::InferenceSession;
use crate::model::PasswordModel;

use super::queue::{AdmissionQueue, Pop};

/// How long a worker parks waiting for the first request of a wave before
/// re-checking queue state.
const IDLE_POLL: Duration = Duration::from_millis(50);

/// The terminal answer to one scoring request.
#[derive(Debug, Clone, PartialEq)]
pub enum ScoreOutcome {
    /// The password's log-probability under the model.
    Score(f64),
    /// The password cannot be scored (unencodable, oversized rule); the
    /// request itself was fine to admit.
    Unscorable(String),
    /// Refused at admission: the queue was full (`draining: false`, retry
    /// after the hinted delay) or the server is shutting down
    /// (`draining: true`, do not retry here).
    Rejected {
        /// Suggested client backoff before retrying.
        retry_after_ms: u64,
        /// True when the refusal is a shutdown, not transient load.
        draining: bool,
    },
    /// Admitted but dropped before scoring to protect the batch.
    Shed(ShedReason),
    /// Scoring panicked even alone after all retries; the request is
    /// poisoned. Its co-batched neighbours were unaffected.
    Failed(String),
}

/// Why an admitted request was shed without being scored.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedReason {
    /// The request's deadline expired before a forward slot opened.
    DeadlineExpired,
    /// The client disconnected; nobody is listening for the answer.
    Disconnected,
}

/// Every serve-side counter, gauge, and histogram, registered once and
/// shared by handle. Counters are the source of truth for the post-drain
/// reconciliation check.
#[derive(Debug)]
pub(crate) struct ServeMetrics {
    pub admitted: Counter,
    pub completed: Counter,
    pub shed: Counter,
    pub failed: Counter,
    pub rejected: Counter,
    pub panics: Counter,
    pub bad_requests: Counter,
    pub dropped_responses: Counter,
    pub lost: Counter,
    pub http_requests: Counter,
    pub queue_depth: Gauge,
    pub effective_max_batch: Gauge,
    pub connections: Gauge,
    pub http_connections: Gauge,
    pub occupancy: Histogram,
    pub latency: Histogram,
    pub wave_ms: Histogram,
    pub queue_wait: Histogram,
    pub batch_assembly: Histogram,
    pub forward_ms: Histogram,
    pub rescore_ms: Histogram,
    pub response_write: Histogram,
}

impl ServeMetrics {
    pub(crate) fn new(tel: &Telemetry) -> Arc<ServeMetrics> {
        let reg = tel.registry();
        Arc::new(ServeMetrics {
            admitted: tel.counter("serve.admitted"),
            completed: tel.counter("serve.completed"),
            shed: tel.counter("serve.shed"),
            failed: tel.counter("serve.failed"),
            rejected: tel.counter("serve.rejected"),
            panics: tel.counter("serve.panics"),
            bad_requests: tel.counter("serve.bad_requests"),
            dropped_responses: tel.counter("serve.dropped_responses"),
            lost: tel.counter("serve.lost"),
            http_requests: tel.counter("serve.http_requests"),
            queue_depth: tel.gauge("serve.queue_depth"),
            effective_max_batch: tel.gauge("serve.effective_max_batch"),
            connections: tel.gauge("serve.connections"),
            http_connections: tel.gauge("serve.http_connections"),
            occupancy: reg.histogram("serve.batch.occupancy", DEPTH_BOUNDS),
            latency: reg.histogram("serve.latency.ms", LATENCY_MS_BOUNDS),
            wave_ms: reg.histogram("serve.wave.ms", LATENCY_MS_BOUNDS),
            queue_wait: reg.histogram("serve.queue_wait.ms", LATENCY_MS_BOUNDS),
            batch_assembly: reg.histogram("serve.batch_assembly.ms", LATENCY_MS_BOUNDS),
            forward_ms: reg.histogram("serve.forward.ms", LATENCY_MS_BOUNDS),
            rescore_ms: reg.histogram("serve.rescore.ms", LATENCY_MS_BOUNDS),
            response_write: reg.histogram("serve.response_write.ms", LATENCY_MS_BOUNDS),
        })
    }
}

/// One request's trace identity, fixed at admission and carried through
/// the pipeline. Every stage records its span as a child of `root_span`
/// under `trace_id`; the root span itself is recorded when the request
/// answers (see [`ScoreRequest::respond`]).
#[derive(Debug, Clone, Copy)]
pub(crate) struct ReqTrace {
    /// The trace id shared by every span of this request.
    pub trace_id: u64,
    /// Pre-allocated id of the root (`serve.request`) span, so child
    /// spans can reference it before the root completes.
    pub root_span: u64,
    /// True when the client supplied the trace id (echo it back).
    pub client_supplied: bool,
    /// True when this request's full span tree exports to the JSONL sink
    /// (`--trace-sample`); the in-memory ring always gets the spans.
    pub sampled: bool,
}

impl ReqTrace {
    pub(crate) fn new(client_trace_id: Option<u64>, sampled: bool) -> ReqTrace {
        ReqTrace {
            trace_id: client_trace_id.unwrap_or_else(next_trace_id),
            root_span: next_span_id(),
            client_supplied: client_trace_id.is_some(),
            sampled,
        }
    }
}

/// One admitted scoring request travelling from the protocol layer through
/// the queue to a worker.
pub(crate) struct ScoreRequest {
    /// Server-wide admission sequence number; fault plans key on it.
    pub seq: u64,
    /// The password to score.
    pub password: String,
    /// Shed once expired (already clamped to the server default).
    pub deadline: Option<Deadline>,
    /// The owning connection's token; cancelled means nobody is listening.
    pub cancel: CancelToken,
    /// Panic-retry attempts burned so far (singleton re-scores only).
    pub attempts: u32,
    /// Admission instant, for end-to-end latency.
    pub enqueued_at: Instant,
    /// Admission wall clock, anchoring this request's spans in time.
    pub enqueued_wall_ms: u64,
    /// This request's trace identity.
    pub trace: ReqTrace,
    responder: Option<Box<dyn FnOnce(ScoreOutcome) + Send>>,
    metrics: Arc<ServeMetrics>,
    tracer: TraceRecorder,
}

impl std::fmt::Debug for ScoreRequest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScoreRequest")
            .field("seq", &self.seq)
            .field("attempts", &self.attempts)
            .finish_non_exhaustive()
    }
}

impl ScoreRequest {
    // An internal constructor with two call sites (the NDJSON and HTTP
    // planes); a builder would add ceremony without adding clarity.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        seq: u64,
        password: String,
        deadline: Option<Deadline>,
        cancel: CancelToken,
        metrics: Arc<ServeMetrics>,
        tracer: TraceRecorder,
        trace: ReqTrace,
        responder: impl FnOnce(ScoreOutcome) + Send + 'static,
    ) -> ScoreRequest {
        ScoreRequest {
            seq,
            password,
            deadline,
            cancel,
            attempts: 0,
            enqueued_at: Instant::now(),
            enqueued_wall_ms: wall_clock_ms(),
            trace,
            responder: Some(Box::new(responder)),
            metrics,
            tracer,
        }
    }

    /// Records one completed pipeline stage as a child span of this
    /// request's root, exporting it to the JSONL sink when sampled.
    pub(crate) fn child_span(&self, name: &str, start_ms: u64, dur_ms: f64) {
        self.tracer.record(
            TraceCtx::child_of(self.trace.trace_id, self.trace.root_span),
            name,
            start_ms,
            dur_ms,
            self.trace.sampled,
        );
    }

    /// Records queue wait (admission → dequeue) as a span + histogram;
    /// called by the worker the moment it pops the request.
    pub(crate) fn note_dequeued(&self) {
        let waited_ms = self.enqueued_at.elapsed().as_secs_f64() * 1e3;
        self.metrics.queue_wait.record(waited_ms);
        self.child_span("serve.queue_wait", self.enqueued_wall_ms, waited_ms);
    }

    /// Answers the client and does the terminal metric bookkeeping. The
    /// second call on the same request is a silent no-op (the `Option`
    /// guarantees at-most-once); the `Drop` backstop guarantees
    /// at-least-once.
    pub(crate) fn respond(&mut self, outcome: ScoreOutcome) {
        let Some(responder) = self.responder.take() else {
            return;
        };
        match &outcome {
            ScoreOutcome::Score(_) | ScoreOutcome::Unscorable(_) => {
                self.metrics.completed.inc();
                let ms = self.enqueued_at.elapsed().as_secs_f64() * 1e3;
                self.metrics.latency.record(ms);
            }
            ScoreOutcome::Shed(_) => self.metrics.shed.inc(),
            ScoreOutcome::Failed(_) => self.metrics.failed.inc(),
            ScoreOutcome::Rejected { .. } => self.metrics.rejected.inc(),
        }
        responder(outcome);
        // The root span closes when the request answers; children recorded
        // later (response write happens inside the responder's channel
        // consumer) still reference it by the pre-allocated id.
        self.tracer.record_with_id(
            self.trace.root_span,
            TraceCtx::root(self.trace.trace_id),
            "serve.request",
            self.enqueued_wall_ms,
            self.enqueued_at.elapsed().as_secs_f64() * 1e3,
            self.trace.sampled,
        );
    }
}

impl Drop for ScoreRequest {
    /// Backstop for the exactly-one-response contract: a request dropped
    /// without an answer still answers its client (as a failure) and
    /// leaves a `serve.lost` trace. Reaching this path is a server bug;
    /// the counter makes it observable instead of a silent hang.
    fn drop(&mut self) {
        if self.responder.is_some() {
            self.metrics.lost.inc();
            self.respond(ScoreOutcome::Failed(
                "request dropped without a response (server bug)".to_string(),
            ));
        }
    }
}

/// Tunables for the batching workers.
#[derive(Debug, Clone)]
pub(crate) struct EngineConfig {
    /// Hard ceiling on requests per forward (degraded mode only shrinks).
    pub max_batch: usize,
    /// How long a wave waits to fill after its first request arrives.
    pub batch_window: Duration,
    /// Singleton panic re-scores before a request is declared poisoned.
    pub retries: u32,
    /// Consecutive deadline-miss waves before the batch ceiling halves.
    pub degrade_after: u32,
    /// Consecutive clean waves before the ceiling doubles back.
    pub recover_after: u32,
}

/// The degraded-mode state machine, shared by every worker.
///
/// States are the powers of two in `[1, max_batch]`. Transitions:
/// `degrade_after` consecutive waves that shed at least one request for a
/// missed deadline halve the effective ceiling (emitting a
/// `serve.degraded` warning); `recover_after` consecutive clean waves
/// double it (emitting `serve.recovered`). Mixed traffic resets both
/// streaks, so oscillation needs sustained evidence in either direction.
#[derive(Debug)]
pub(crate) struct DegradeState {
    effective: AtomicUsize,
    max: usize,
    degrade_after: u32,
    recover_after: u32,
    streaks: Mutex<Streaks>,
}

#[derive(Debug, Default)]
struct Streaks {
    miss: u32,
    clean: u32,
}

impl DegradeState {
    pub(crate) fn new(cfg: &EngineConfig) -> DegradeState {
        DegradeState {
            effective: AtomicUsize::new(cfg.max_batch.max(1)),
            max: cfg.max_batch.max(1),
            degrade_after: cfg.degrade_after.max(1),
            recover_after: cfg.recover_after.max(1),
            streaks: Mutex::new(Streaks::default()),
        }
    }

    /// The current batch ceiling.
    pub(crate) fn effective_max(&self) -> usize {
        // ORD: the ceiling is a hint; workers reading a stale value for
        // one wave is harmless.
        self.effective.load(Ordering::Relaxed).max(1)
    }

    /// Records one wave's deadline outcome and applies any transition.
    pub(crate) fn record_wave(
        &self,
        missed_deadline: bool,
        metrics: &ServeMetrics,
        tel: &Telemetry,
    ) {
        let mut s = self.streaks.lock();
        let next = if missed_deadline {
            s.clean = 0;
            s.miss += 1;
            if s.miss < self.degrade_after {
                None
            } else {
                s.miss = 0;
                let cur = self.effective_max();
                (cur > 1).then_some((cur / 2, "serve.degraded", "warn"))
            }
        } else {
            s.miss = 0;
            s.clean += 1;
            if s.clean < self.recover_after {
                None
            } else {
                s.clean = 0;
                let cur = self.effective_max();
                (cur < self.max).then_some(((cur * 2).min(self.max), "serve.recovered", "progress"))
            }
        };
        if let Some((ceiling, event, kind)) = next {
            // ORD: published under the streak lock, so transitions are
            // serialized; readers only need the eventual value.
            self.effective.store(ceiling, Ordering::Relaxed);
            metrics.effective_max_batch.set(ceiling as f64);
            tel.event(kind, event, &[("max_batch", Field::U64(ceiling as u64))]);
        }
    }
}

/// One worker: pulls waves off the queue until it closes and is drained,
/// scoring each wave in a single batched forward on its own session.
///
/// This function never panics outward: scoring panics are contained by
/// [`score_wave`] and turned into per-request [`ScoreOutcome::Failed`]s.
pub(crate) fn worker_loop(
    model: &PasswordModel,
    queue: &AdmissionQueue<ScoreRequest>,
    cfg: &EngineConfig,
    degrade: &DegradeState,
    metrics: &ServeMetrics,
    fault: Option<&FaultPlan>,
    tel: &Telemetry,
) {
    let mut session = InferenceSession::with_telemetry(model, tel);
    loop {
        let first = match queue.pop_timeout(IDLE_POLL) {
            Pop::Item(r) => r,
            Pop::TimedOut => continue,
            Pop::Closed => return,
        };
        first.note_dequeued();
        // Batch assembly: first pop → sheds applied and the wave grouped.
        let assembly_started = Instant::now();
        let assembly_wall_ms = wall_clock_ms();
        let mut wave = vec![first];
        let ceiling = degrade.effective_max();
        let window_ends = Deadline::after(cfg.batch_window);
        while wave.len() < ceiling && !window_ends.expired() {
            match queue.pop_timeout(window_ends.remaining()) {
                Pop::Item(r) => {
                    r.note_dequeued();
                    wave.push(r);
                }
                Pop::TimedOut | Pop::Closed => break,
            }
        }
        metrics.queue_depth.set(queue.len() as f64);

        // Shed before scoring: expired or abandoned requests must not
        // occupy a forward slot.
        let mut missed_deadline = false;
        let mut group = Vec::with_capacity(wave.len());
        for mut req in wave {
            if req.cancel.is_cancelled() {
                req.respond(ScoreOutcome::Shed(ShedReason::Disconnected));
            } else if req.deadline.is_some_and(|d| d.expired()) {
                missed_deadline = true;
                req.respond(ScoreOutcome::Shed(ShedReason::DeadlineExpired));
            } else {
                group.push(req);
            }
        }
        degrade.record_wave(missed_deadline, metrics, tel);
        if group.is_empty() {
            continue;
        }
        let assembly_ms = assembly_started.elapsed().as_secs_f64() * 1e3;
        metrics.batch_assembly.record(assembly_ms);
        for req in &group {
            req.child_span("serve.batch_assembly", assembly_wall_ms, assembly_ms);
        }
        metrics.occupancy.record(group.len() as f64);
        let wave_started = Instant::now();
        score_wave(&mut session, group, cfg, metrics, fault);
        metrics
            .wave_ms
            .record(wave_started.elapsed().as_secs_f64() * 1e3);
    }
}

/// Scores one wave, containing panics by halving: a panicking group is
/// split in two and each half re-scored, so a single poisoned request is
/// isolated in O(log batch) forwards while its neighbours are re-scored
/// bit-identically (row-independent decode). A singleton that panics
/// burns one of its `cfg.retries` attempts per re-score; exhausting them
/// answers [`ScoreOutcome::Failed`].
fn score_wave(
    session: &mut InferenceSession<'_>,
    group: Vec<ScoreRequest>,
    cfg: &EngineConfig,
    metrics: &ServeMetrics,
    fault: Option<&FaultPlan>,
) {
    // Later-scored halves are pushed first so response order within the
    // wave stays FIFO. Depth 0 is the original forward; anything deeper
    // is a halving re-score after a contained panic.
    let mut stack = vec![(group, 0u32)];
    while let Some((mut group, depth)) = stack.pop() {
        if group.is_empty() {
            continue;
        }
        let passwords: Vec<&str> = group.iter().map(|r| r.password.as_str()).collect();
        let forward_started = Instant::now();
        let forward_wall_ms = wall_clock_ms();
        let scores = catch_unwind(AssertUnwindSafe(|| {
            if let Some(plan) = fault {
                for req in &group {
                    if plan.take_task_panic(req.seq) {
                        panic!("{}", crate::control::INJECTED_PANIC);
                    }
                }
            }
            session.score_batch(&passwords)
        }));
        let forward_ms = forward_started.elapsed().as_secs_f64() * 1e3;
        let span_name = if depth == 0 {
            metrics.forward_ms.record(forward_ms);
            "serve.forward"
        } else {
            metrics.rescore_ms.record(forward_ms);
            "serve.rescore"
        };
        match scores {
            Ok(scores) => {
                for (mut req, score) in group.into_iter().zip(scores) {
                    req.child_span(span_name, forward_wall_ms, forward_ms);
                    match score {
                        Ok(lp) => req.respond(ScoreOutcome::Score(lp)),
                        Err(e) => req.respond(ScoreOutcome::Unscorable(e.to_string())),
                    }
                }
            }
            Err(payload) => {
                metrics.panics.inc();
                // The cache may hold a half-advanced decode; start clean.
                session.reset();
                if group.len() == 1 {
                    if let Some(mut req) = group.pop() {
                        req.attempts += 1;
                        if req.attempts > cfg.retries {
                            req.child_span(span_name, forward_wall_ms, forward_ms);
                            req.respond(ScoreOutcome::Failed(panic_message(payload.as_ref())));
                        } else {
                            stack.push((vec![req], depth + 1));
                        }
                    }
                } else {
                    let right = group.split_off(group.len() / 2);
                    stack.push((right, depth + 1));
                    stack.push((group, depth + 1));
                }
            }
        }
    }
}

/// Extracts a printable message from a panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "scoring task panicked".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{ModelKind, PasswordModel};
    use crate::serve::queue::Priority;
    use pagpass_nn::GptConfig;
    use pagpass_telemetry::LogFormat;
    use pagpass_tokenizer::VOCAB_SIZE;
    use std::thread;

    /// A fresh, silent telemetry instance per test: `Telemetry::disabled()`
    /// shares one global registry, and these tests assert exact counter
    /// values, so they must not share metrics across parallel tests.
    fn quiet_tel() -> Telemetry {
        Telemetry::to_writer(LogFormat::Json, Box::new(std::io::sink()))
    }

    fn tiny() -> PasswordModel {
        PasswordModel::new(
            ModelKind::PagPassGpt,
            GptConfig {
                vocab_size: VOCAB_SIZE,
                ctx_len: 32,
                dim: 16,
                n_layers: 1,
                n_heads: 2,
            },
            3,
        )
    }

    fn cfg() -> EngineConfig {
        EngineConfig {
            max_batch: 8,
            batch_window: Duration::from_millis(20),
            retries: 2,
            degrade_after: 3,
            recover_after: 8,
        }
    }

    /// Runs `requests` through a single worker against `model`, returning
    /// `(seq, outcome)` pairs in response order.
    fn run_engine(
        model: &PasswordModel,
        cfg: &EngineConfig,
        fault: Option<&FaultPlan>,
        build: impl FnOnce(
            &Arc<ServeMetrics>,
            &Arc<Mutex<Vec<(u64, ScoreOutcome)>>>,
        ) -> Vec<(ScoreRequest, Priority)>,
    ) -> (Vec<(u64, ScoreOutcome)>, Arc<ServeMetrics>) {
        let tel = &quiet_tel();
        let metrics = ServeMetrics::new(tel);
        let outcomes: Arc<Mutex<Vec<(u64, ScoreOutcome)>>> = Arc::new(Mutex::new(Vec::new()));
        let queue = AdmissionQueue::new(64);
        for (req, pri) in build(&metrics, &outcomes) {
            metrics.admitted.inc();
            queue.push(req, pri).map_err(|_| "push").unwrap();
        }
        queue.close();
        let degrade = DegradeState::new(cfg);
        thread::scope(|s| {
            s.spawn(|| worker_loop(model, &queue, cfg, &degrade, &metrics, fault, tel));
        });
        let got = outcomes.lock().clone();
        (got, metrics)
    }

    fn request_with(
        seq: u64,
        pw: &str,
        deadline: Option<Deadline>,
        cancel: CancelToken,
        metrics: &Arc<ServeMetrics>,
        outcomes: &Arc<Mutex<Vec<(u64, ScoreOutcome)>>>,
    ) -> ScoreRequest {
        let sink = Arc::clone(outcomes);
        ScoreRequest::new(
            seq,
            pw.to_string(),
            deadline,
            cancel,
            Arc::clone(metrics),
            quiet_tel().trace_recorder(),
            ReqTrace::new(None, false),
            move |outcome| sink.lock().push((seq, outcome)),
        )
    }

    fn request(
        seq: u64,
        pw: &str,
        metrics: &Arc<ServeMetrics>,
        outcomes: &Arc<Mutex<Vec<(u64, ScoreOutcome)>>>,
    ) -> ScoreRequest {
        request_with(seq, pw, None, CancelToken::new(), metrics, outcomes)
    }

    #[test]
    fn scores_a_batch_and_reconciles_counters() {
        let model = tiny();
        let pws = ["hello123", "Pass123$", "abc12345"];
        let (got, metrics) = run_engine(&model, &cfg(), None, |m, o| {
            pws.iter()
                .enumerate()
                .map(|(i, pw)| (request(i as u64, pw, m, o), Priority::Normal))
                .collect()
        });
        assert_eq!(got.len(), 3);
        // Bit-identical to solo scoring.
        for (i, pw) in pws.iter().enumerate() {
            let mut solo = InferenceSession::new(&model);
            let want = solo.log_probability(pw).unwrap();
            match got.iter().find(|(seq, _)| *seq == i as u64) {
                Some((_, ScoreOutcome::Score(lp))) => assert_eq!(*lp, want, "{pw}"),
                other => panic!("expected score for {pw}, got {other:?}"),
            }
        }
        assert_eq!(metrics.admitted.get(), 3);
        assert_eq!(metrics.completed.get(), 3);
        assert_eq!(metrics.shed.get(), 0);
        assert_eq!(metrics.failed.get(), 0);
        assert_eq!(metrics.lost.get(), 0);
    }

    #[test]
    fn poisoned_request_cannot_poison_cobatched_neighbours() {
        let model = tiny();
        let pws = ["hello123", "Pass123$", "abc12345", "qwerty99"];
        let poisoned = 2u64;
        let plan = FaultPlan::new().panic_task_always(poisoned);
        let (got, metrics) = run_engine(&model, &cfg(), Some(&plan), |m, o| {
            pws.iter()
                .enumerate()
                .map(|(i, pw)| (request(i as u64, pw, m, o), Priority::Normal))
                .collect()
        });
        assert_eq!(got.len(), 4);
        for (i, pw) in pws.iter().enumerate() {
            let outcome = &got.iter().find(|(seq, _)| *seq == i as u64).unwrap().1;
            if i as u64 == poisoned {
                assert!(
                    matches!(outcome, ScoreOutcome::Failed(msg) if msg.contains("injected")),
                    "poisoned request must fail: {outcome:?}"
                );
            } else {
                // Neighbours re-scored after the split must be
                // byte-identical to a solo run — not approximately equal.
                let mut solo = InferenceSession::new(&model);
                let want = solo.log_probability(pw).unwrap();
                match outcome {
                    ScoreOutcome::Score(lp) => assert_eq!(*lp, want, "{pw}"),
                    other => panic!("neighbour {pw} must score, got {other:?}"),
                }
            }
        }
        assert!(metrics.panics.get() >= 1);
        assert_eq!(metrics.failed.get(), 1);
        assert_eq!(metrics.completed.get(), 3);
        assert_eq!(
            metrics.admitted.get(),
            metrics.completed.get() + metrics.shed.get() + metrics.failed.get()
        );
        assert_eq!(metrics.lost.get(), 0);
    }

    #[test]
    fn transient_panic_recovers_within_retry_budget() {
        let model = tiny();
        let plan = FaultPlan::new().panic_task_once(0);
        let (got, metrics) = run_engine(&model, &cfg(), Some(&plan), |m, o| {
            vec![(request(0, "hello123", m, o), Priority::Normal)]
        });
        let mut solo = InferenceSession::new(&model);
        let want = solo.log_probability("hello123").unwrap();
        assert_eq!(got, vec![(0, ScoreOutcome::Score(want))]);
        assert_eq!(metrics.panics.get(), 1);
        assert_eq!(metrics.failed.get(), 0);
    }

    #[test]
    fn expired_deadline_and_dead_connection_are_shed_not_scored() {
        let model = tiny();
        let dead = CancelToken::new();
        dead.cancel();
        let (got, metrics) = run_engine(&model, &cfg(), None, |m, o| {
            let expired = request_with(
                0,
                "hello123",
                Some(Deadline::after(Duration::ZERO)),
                CancelToken::new(),
                m,
                o,
            );
            let abandoned = request_with(1, "Pass123$", None, dead.clone(), m, o);
            vec![
                (expired, Priority::High),
                (abandoned, Priority::Normal),
                (request(2, "abc12345", m, o), Priority::Normal),
            ]
        });
        assert_eq!(got.len(), 3);
        let outcome = |seq| got.iter().find(|(s, _)| *s == seq).unwrap().1.clone();
        assert_eq!(outcome(0), ScoreOutcome::Shed(ShedReason::DeadlineExpired));
        assert_eq!(outcome(1), ScoreOutcome::Shed(ShedReason::Disconnected));
        assert!(matches!(outcome(2), ScoreOutcome::Score(_)));
        assert_eq!(metrics.shed.get(), 2);
        assert_eq!(metrics.completed.get(), 1);
        assert_eq!(
            metrics.admitted.get(),
            metrics.completed.get() + metrics.shed.get() + metrics.failed.get()
        );
    }

    #[test]
    fn dropped_request_answers_failed_and_counts_lost() {
        let tel = &quiet_tel();
        let metrics = ServeMetrics::new(tel);
        let outcomes: Arc<Mutex<Vec<(u64, ScoreOutcome)>>> = Arc::new(Mutex::new(Vec::new()));
        let req = request(9, "hello123", &metrics, &outcomes);
        drop(req);
        let got = outcomes.lock().clone();
        assert_eq!(got.len(), 1);
        assert!(matches!(&got[0].1, ScoreOutcome::Failed(msg) if msg.contains("server bug")));
        assert_eq!(metrics.lost.get(), 1);
        assert_eq!(metrics.failed.get(), 1);
    }

    #[test]
    fn degrade_state_halves_on_miss_streaks_and_recovers() {
        let cfg = EngineConfig {
            max_batch: 8,
            batch_window: Duration::ZERO,
            retries: 0,
            degrade_after: 2,
            recover_after: 3,
        };
        let tel = &quiet_tel();
        let metrics = ServeMetrics::new(tel);
        let d = DegradeState::new(&cfg);
        assert_eq!(d.effective_max(), 8);
        d.record_wave(true, &metrics, tel);
        assert_eq!(d.effective_max(), 8, "one miss is not a streak");
        d.record_wave(true, &metrics, tel);
        assert_eq!(d.effective_max(), 4, "two misses halve");
        d.record_wave(true, &metrics, tel);
        d.record_wave(true, &metrics, tel);
        d.record_wave(true, &metrics, tel);
        d.record_wave(true, &metrics, tel);
        assert_eq!(d.effective_max(), 1, "floor is one");
        d.record_wave(true, &metrics, tel);
        d.record_wave(true, &metrics, tel);
        assert_eq!(d.effective_max(), 1, "stays at the floor");
        // A clean streak interrupted by a miss restarts from zero.
        d.record_wave(false, &metrics, tel);
        d.record_wave(false, &metrics, tel);
        d.record_wave(true, &metrics, tel);
        d.record_wave(false, &metrics, tel);
        d.record_wave(false, &metrics, tel);
        assert_eq!(d.effective_max(), 1, "interrupted streak does not recover");
        d.record_wave(false, &metrics, tel);
        assert_eq!(d.effective_max(), 2, "three clean waves double");
        for _ in 0..6 {
            d.record_wave(false, &metrics, tel);
        }
        assert_eq!(d.effective_max(), 8, "recovery is capped at max_batch");
    }
}
