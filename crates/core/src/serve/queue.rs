//! Bounded two-priority admission queue for the scoring server.
//!
//! The queue is the server's backpressure boundary: [`push`] never blocks
//! and never grows the queue past its capacity — a full queue hands the
//! request back as [`PushError::Full`] so the caller can answer
//! reject-with-retry-after instead of buffering unboundedly. Two priority
//! lanes exist so deadline-bearing requests are served before best-effort
//! ones; within a lane, order is strictly FIFO.
//!
//! Shutdown is a drain, not a drop: after [`close`], pushes are refused
//! ([`PushError::Closed`]) but [`pop_timeout`] keeps handing out the
//! already-admitted items until both lanes are empty and only then reports
//! [`Pop::Closed`]. That is what lets the server promise "no admitted
//! request is lost on SIGINT".
//!
//! [`push`]: AdmissionQueue::push
//! [`close`]: AdmissionQueue::close
//! [`pop_timeout`]: AdmissionQueue::pop_timeout

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// Admission lane. `High` is drained before `Normal`; the server maps
/// deadline-bearing requests to `High` so a deadline storm cannot starve
/// behind a backlog of best-effort work it would expire in anyway.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Priority {
    /// Served first (deadline-bearing requests).
    High,
    /// Served after every `High` item (best-effort requests).
    Normal,
}

/// Why a push was refused. Both variants return the rejected item so the
/// caller can answer the client without cloning requests up front.
#[derive(Debug)]
pub enum PushError<T> {
    /// The queue is at capacity; retry later.
    Full(T),
    /// The queue is closed (server draining); do not retry here.
    Closed(T),
}

/// Outcome of a pop.
#[derive(Debug)]
pub enum Pop<T> {
    /// An admitted item, highest lane first, FIFO within a lane.
    Item(T),
    /// Nothing arrived within the wait budget; the queue is still open.
    TimedOut,
    /// The queue is closed *and* fully drained; no item will ever arrive.
    Closed,
}

/// Items in both lanes plus the closed flag, guarded by one mutex.
#[derive(Debug)]
struct Lanes<T> {
    high: VecDeque<T>,
    normal: VecDeque<T>,
    closed: bool,
}

impl<T> Lanes<T> {
    fn len(&self) -> usize {
        self.high.len() + self.normal.len()
    }

    fn take(&mut self) -> Option<T> {
        self.high.pop_front().or_else(|| self.normal.pop_front())
    }
}

/// Bounded MPMC queue with two priority lanes. See the module docs for the
/// backpressure and drain contracts.
#[derive(Debug)]
pub struct AdmissionQueue<T> {
    lanes: Mutex<Lanes<T>>,
    ready: Condvar,
    cap: usize,
}

/// Locks a mutex, riding through poisoning: the queue's state is a pair of
/// `VecDeque`s plus a flag, all valid at every instruction boundary, so a
/// panicking holder cannot leave them inconsistent.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

impl<T> AdmissionQueue<T> {
    /// Creates a queue admitting at most `cap` items across both lanes
    /// (`cap` is clamped to at least 1).
    #[must_use]
    pub fn new(cap: usize) -> AdmissionQueue<T> {
        AdmissionQueue {
            lanes: Mutex::new(Lanes {
                high: VecDeque::new(),
                normal: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
            cap: cap.max(1),
        }
    }

    /// Admits `item` into `pri`'s lane, or hands it back if the queue is
    /// full or closed. Never blocks.
    pub fn push(&self, item: T, pri: Priority) -> Result<(), PushError<T>> {
        let mut lanes = lock(&self.lanes);
        if lanes.closed {
            return Err(PushError::Closed(item));
        }
        if lanes.len() >= self.cap {
            return Err(PushError::Full(item));
        }
        match pri {
            Priority::High => lanes.high.push_back(item),
            Priority::Normal => lanes.normal.push_back(item),
        }
        drop(lanes);
        self.ready.notify_one();
        Ok(())
    }

    /// Pops the next item without waiting (equivalent to a zero-budget
    /// [`pop_timeout`](Self::pop_timeout); kept for test readability).
    #[cfg(test)]
    pub fn try_pop(&self) -> Pop<T> {
        let mut lanes = lock(&self.lanes);
        match lanes.take() {
            Some(item) => Pop::Item(item),
            None if lanes.closed => Pop::Closed,
            None => Pop::TimedOut,
        }
    }

    /// Pops the next item, waiting up to `wait` for one to arrive. After
    /// [`close`](Self::close), keeps returning queued items until the queue
    /// is drained, then returns [`Pop::Closed`].
    pub fn pop_timeout(&self, wait: Duration) -> Pop<T> {
        let deadline = Instant::now() + wait;
        let mut lanes = lock(&self.lanes);
        loop {
            if let Some(item) = lanes.take() {
                return Pop::Item(item);
            }
            if lanes.closed {
                return Pop::Closed;
            }
            let now = Instant::now();
            if now >= deadline {
                return Pop::TimedOut;
            }
            lanes = self
                .ready
                .wait_timeout(lanes, deadline - now)
                .unwrap_or_else(PoisonError::into_inner)
                .0;
        }
    }

    /// Closes the queue: future pushes are refused, pops drain what was
    /// already admitted and then report [`Pop::Closed`].
    pub fn close(&self) {
        lock(&self.lanes).closed = true;
        self.ready.notify_all();
    }

    /// Items currently queued across both lanes.
    #[must_use]
    pub fn len(&self) -> usize {
        lock(&self.lanes).len()
    }

    /// Whether both lanes are empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The admission cap this queue was built with.
    #[cfg(test)]
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.cap
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn rejects_when_full_and_hands_the_item_back() {
        let q = AdmissionQueue::new(2);
        q.push(1, Priority::Normal).unwrap();
        q.push(2, Priority::High).unwrap();
        match q.push(3, Priority::Normal) {
            Err(PushError::Full(item)) => assert_eq!(item, 3),
            other => panic!("expected Full, got {other:?}"),
        }
        // The cap covers both lanes together: high is refused too.
        match q.push(4, Priority::High) {
            Err(PushError::Full(item)) => assert_eq!(item, 4),
            other => panic!("expected Full, got {other:?}"),
        }
        assert_eq!(q.len(), 2);
        // Popping frees a slot and the queue admits again.
        assert!(matches!(q.try_pop(), Pop::Item(2)));
        q.push(5, Priority::Normal).unwrap();
    }

    #[test]
    fn fifo_within_priority_and_high_lane_first() {
        let q = AdmissionQueue::new(8);
        q.push("n1", Priority::Normal).unwrap();
        q.push("h1", Priority::High).unwrap();
        q.push("n2", Priority::Normal).unwrap();
        q.push("h2", Priority::High).unwrap();
        let mut order = Vec::new();
        while let Pop::Item(s) = q.try_pop() {
            order.push(s);
        }
        assert_eq!(order, ["h1", "h2", "n1", "n2"]);
    }

    #[test]
    fn close_drains_in_order_then_reports_closed() {
        let q = AdmissionQueue::new(8);
        q.push(10, Priority::Normal).unwrap();
        q.push(11, Priority::Normal).unwrap();
        q.close();
        // Pushes are refused immediately, even though there is space...
        match q.push(12, Priority::Normal) {
            Err(PushError::Closed(item)) => assert_eq!(item, 12),
            other => panic!("expected Closed, got {other:?}"),
        }
        // ...but already-admitted items drain in FIFO order first.
        assert!(matches!(
            q.pop_timeout(Duration::from_millis(1)),
            Pop::Item(10)
        ));
        assert!(matches!(q.try_pop(), Pop::Item(11)));
        assert!(matches!(q.try_pop(), Pop::Closed));
        assert!(matches!(
            q.pop_timeout(Duration::from_millis(1)),
            Pop::Closed
        ));
    }

    #[test]
    fn pop_timeout_times_out_on_an_open_empty_queue() {
        let q: AdmissionQueue<u8> = AdmissionQueue::new(4);
        assert!(matches!(q.try_pop(), Pop::TimedOut));
        assert!(matches!(
            q.pop_timeout(Duration::from_millis(5)),
            Pop::TimedOut
        ));
    }

    #[test]
    fn pop_timeout_wakes_on_push_and_on_close() {
        let q = Arc::new(AdmissionQueue::new(4));
        let producer = {
            let q = Arc::clone(&q);
            thread::spawn(move || {
                q.push(7u8, Priority::Normal).unwrap();
                q.close();
            })
        };
        // Generous budget: the wait must be cut short by the wakeups, and
        // after the drain the close is observed without a new push.
        let first = q.pop_timeout(Duration::from_secs(10));
        assert!(matches!(first, Pop::Item(7)));
        assert!(matches!(
            q.pop_timeout(Duration::from_secs(10)),
            Pop::Closed
        ));
        producer.join().unwrap();
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let q = AdmissionQueue::new(0);
        assert_eq!(q.capacity(), 1);
        q.push(1, Priority::Normal).unwrap();
        assert!(matches!(
            q.push(2, Priority::Normal),
            Err(PushError::Full(2))
        ));
    }
}
