//! Newline-delimited-JSON protocol layer for the scoring server.
//!
//! One TCP connection carries many requests: each line is a JSON object
//! `{"password": "...", "id": 7, "deadline_ms": 250, "trace_id": 9}`
//! (`id`, `deadline_ms`, and `trace_id` optional) and each response is one
//! JSON line tagged with the request's `id` when it had one. Requests
//! carrying an explicit `deadline_ms` are admitted into the high-priority
//! lane. A client-supplied `trace_id` names the request's trace (echoed
//! back as `"trace_id"` on the response); without one the server allocates
//! a fresh id. Either way every pipeline stage records a child span under
//! that trace — in the in-memory span ring always, and to the JSONL sink
//! for every `trace_sample`-th request.
//!
//! Per connection the server runs a reader thread and a writer thread
//! joined by a bounded channel, so one slow client can neither stall a
//! scoring worker nor buffer responses unboundedly: when the client stops
//! draining its socket the channel fills and further responses for that
//! connection are dropped (counted as `serve.dropped_responses`), never
//! queued without limit. A malformed line is answered immediately with an
//! error and is never admitted; a line longer than [`MAX_LINE_BYTES`]
//! closes the connection.

use std::io::{ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{mpsc, Arc};
use std::thread::Scope;
use std::time::{Duration, Instant};

use pagpass_telemetry::{
    parse_json, wall_clock_ms, write_json_f64, write_json_str, JsonValue, TraceCtx, TraceRecorder,
};

use crate::control::{CancelToken, Deadline};

use super::engine::{ReqTrace, ScoreOutcome, ScoreRequest, ServeMetrics};
use super::queue::{AdmissionQueue, Priority, PushError};
use super::ServeConfig;

/// Hard cap on one request line; beyond this the connection is closed.
pub(super) const MAX_LINE_BYTES: usize = 64 * 1024;

/// Responses buffered per connection before a slow client starts losing
/// them.
const RESPONSE_CHANNEL_DEPTH: usize = 1024;

/// How long socket reads block before re-checking cancellation.
const READ_POLL: Duration = Duration::from_millis(50);

/// How long the acceptor sleeps when no connection is pending.
pub(super) const ACCEPT_POLL: Duration = Duration::from_millis(20);

/// Everything a connection handler needs, borrowed from the server scope.
pub(super) struct ConnShared<'a> {
    pub queue: &'a AdmissionQueue<ScoreRequest>,
    pub metrics: &'a Arc<ServeMetrics>,
    pub cfg: &'a ServeConfig,
    pub server_cancel: &'a CancelToken,
    pub seq: &'a AtomicU64,
    pub active_readers: &'a AtomicUsize,
    pub connections: &'a AtomicUsize,
    pub tracer: &'a TraceRecorder,
}

/// Accepts connections until the server token cancels, spawning a
/// reader/writer pair per connection into `scope`.
pub(super) fn accept_loop<'scope>(
    scope: &'scope Scope<'scope, '_>,
    listener: &TcpListener,
    shared: &'scope ConnShared<'scope>,
) {
    while !shared.server_cancel.is_cancelled() {
        match listener.accept() {
            Ok((stream, _peer)) => spawn_connection(scope, stream, shared),
            Err(e) if e.kind() == ErrorKind::WouldBlock => std::thread::sleep(ACCEPT_POLL),
            // Transient accept errors (aborted handshake, fd pressure):
            // back off and keep serving existing connections.
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
}

fn spawn_connection<'scope>(
    scope: &'scope Scope<'scope, '_>,
    stream: TcpStream,
    shared: &'scope ConnShared<'scope>,
) {
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let (resp_tx, resp_rx) = mpsc::sync_channel::<String>(RESPONSE_CHANNEL_DEPTH);
    // ORD: AcqRel so the returned count pairs with the matching
    // decrement and the gauge never goes negative under churn.
    let n = shared.connections.fetch_add(1, Ordering::AcqRel) + 1;
    shared.metrics.connections.set(n as f64);
    // ORD: AcqRel pairs increment/decrement with the drain loop's
    // Acquire read, so zero means every reader has really exited.
    shared.active_readers.fetch_add(1, Ordering::AcqRel);
    scope.spawn(move || writer_loop(write_half, resp_rx));
    scope.spawn(move || {
        reader_loop(stream, resp_tx, shared);
        // ORD: AcqRel, see the matching increment above.
        let n = shared.connections.fetch_sub(1, Ordering::AcqRel) - 1;
        shared.metrics.connections.set(n as f64);
        // ORD: AcqRel releases this reader's admissions before the
        // drain loop can observe zero and close the queue.
        shared.active_readers.fetch_sub(1, Ordering::AcqRel);
    });
}

/// Drains rendered responses onto the socket until every sender (the
/// reader plus all in-flight responders) is gone. A write error stops
/// writing; senders then observe the closed channel and count drops.
fn writer_loop(mut stream: TcpStream, responses: Receiver<String>) {
    while let Ok(line) = responses.recv() {
        if stream.write_all(line.as_bytes()).is_err() {
            return;
        }
    }
}

/// Reads request lines until the client disconnects or the server drains.
/// Client disconnect cancels the connection token so queued requests are
/// shed instead of scored for nobody; server drain leaves the token alone
/// so admitted requests still complete and flush.
fn reader_loop(mut stream: TcpStream, resp_tx: SyncSender<String>, shared: &ConnShared<'_>) {
    let conn_cancel = CancelToken::new();
    if stream.set_read_timeout(Some(READ_POLL)).is_err() {
        return;
    }
    let mut acc: Vec<u8> = Vec::new();
    let mut buf = [0u8; 4096];
    loop {
        if shared.server_cancel.is_cancelled() {
            return;
        }
        match stream.read(&mut buf) {
            Ok(0) => {
                conn_cancel.cancel();
                return;
            }
            Ok(n) => {
                acc.extend_from_slice(&buf[..n]);
                while let Some(pos) = acc.iter().position(|&b| b == b'\n') {
                    let line: Vec<u8> = acc.drain(..=pos).collect();
                    handle_line(&line[..pos], &resp_tx, &conn_cancel, shared);
                }
                if acc.len() > MAX_LINE_BYTES {
                    shared.metrics.bad_requests.inc();
                    send_response(
                        &resp_tx,
                        shared.metrics,
                        render_error(None, "request line exceeds 64 KiB"),
                    );
                    conn_cancel.cancel();
                    return;
                }
            }
            // Interrupted: a signal (e.g. the SIGTERM that starts the
            // drain) landed on this thread mid-read; retry, don't drop
            // the connection.
            Err(e)
                if matches!(
                    e.kind(),
                    ErrorKind::WouldBlock | ErrorKind::TimedOut | ErrorKind::Interrupted
                ) => {}
            Err(_) => {
                conn_cancel.cancel();
                return;
            }
        }
    }
}

/// Parses one request line and either admits it or answers immediately
/// (malformed input, full queue, draining server).
fn handle_line(
    raw: &[u8],
    resp_tx: &SyncSender<String>,
    conn_cancel: &CancelToken,
    shared: &ConnShared<'_>,
) {
    let admit_started = Instant::now();
    let admit_wall_ms = wall_clock_ms();
    let line = String::from_utf8_lossy(raw);
    let line = line.trim();
    if line.is_empty() {
        return;
    }
    let (password, id, explicit_deadline, client_trace_id) = match parse_request(line) {
        Ok(parts) => parts,
        Err(why) => {
            shared.metrics.bad_requests.inc();
            send_response(resp_tx, shared.metrics, render_error(None, &why));
            return;
        }
    };
    let deadline = explicit_deadline
        .map(Deadline::after)
        .or_else(|| shared.cfg.default_deadline.map(Deadline::after));
    let priority = if explicit_deadline.is_some() {
        Priority::High
    } else {
        Priority::Normal
    };
    // ORD: Relaxed — seq only needs uniqueness, not ordering; the
    // queue push that publishes the request is the synchronizing op.
    let seq = shared.seq.fetch_add(1, Ordering::Relaxed);
    let sampled = shared.cfg.trace_sample > 0 && seq.is_multiple_of(shared.cfg.trace_sample);
    let trace = ReqTrace::new(client_trace_id, sampled);
    let responder = {
        let resp_tx = resp_tx.clone();
        let metrics = Arc::clone(shared.metrics);
        let tracer = shared.tracer.clone();
        move |outcome: ScoreOutcome| {
            let write_started = Instant::now();
            let write_wall_ms = wall_clock_ms();
            let echo = trace.client_supplied.then_some(trace.trace_id);
            send_response(&resp_tx, &metrics, render_response(id, echo, &outcome));
            let write_ms = write_started.elapsed().as_secs_f64() * 1e3;
            metrics.response_write.record(write_ms);
            tracer.record(
                TraceCtx::child_of(trace.trace_id, trace.root_span),
                "serve.response_write",
                write_wall_ms,
                write_ms,
                trace.sampled,
            );
        }
    };
    let request = ScoreRequest::new(
        seq,
        password,
        deadline,
        conn_cancel.clone(),
        Arc::clone(shared.metrics),
        shared.tracer.clone(),
        trace,
        responder,
    );
    // Admission span: line received → about to enqueue (parse + build).
    shared.tracer.record(
        TraceCtx::child_of(trace.trace_id, trace.root_span),
        "serve.admission",
        admit_wall_ms,
        admit_started.elapsed().as_secs_f64() * 1e3,
        trace.sampled,
    );
    match shared.queue.push(request, priority) {
        Ok(()) => {
            shared.metrics.admitted.inc();
            shared.metrics.queue_depth.set(shared.queue.len() as f64);
        }
        Err(PushError::Full(mut request)) => request.respond(ScoreOutcome::Rejected {
            retry_after_ms: shared.cfg.retry_after_ms,
            draining: false,
        }),
        Err(PushError::Closed(mut request)) => request.respond(ScoreOutcome::Rejected {
            retry_after_ms: shared.cfg.retry_after_ms,
            draining: true,
        }),
    }
}

/// Extracts `(password, id, deadline, trace_id)` from one request object.
#[allow(clippy::type_complexity)]
pub(super) fn parse_request(
    line: &str,
) -> Result<(String, Option<u64>, Option<Duration>, Option<u64>), String> {
    let value = parse_json(line).map_err(|e| format!("bad request: {e}"))?;
    let JsonValue::Obj(_) = &value else {
        return Err("bad request: expected a JSON object".to_string());
    };
    let password = value
        .get("password")
        .and_then(JsonValue::as_str)
        .ok_or_else(|| "bad request: missing string field \"password\"".to_string())?
        .to_string();
    let id = value
        .get("id")
        .and_then(JsonValue::as_f64)
        .map(|v| v.max(0.0) as u64);
    let deadline = value
        .get("deadline_ms")
        .and_then(JsonValue::as_f64)
        .map(|ms| Duration::from_millis(ms.max(0.0) as u64));
    let trace_id = value
        .get("trace_id")
        .and_then(JsonValue::as_f64)
        .map(|v| v.max(0.0) as u64);
    Ok((password, id, deadline, trace_id))
}

/// Hands a rendered response line to the connection's writer, counting it
/// as dropped when the slow-client buffer is full or the writer is gone.
fn send_response(resp_tx: &SyncSender<String>, metrics: &ServeMetrics, line: String) {
    match resp_tx.try_send(line) {
        Ok(()) => {}
        Err(TrySendError::Full(_) | TrySendError::Disconnected(_)) => {
            metrics.dropped_responses.inc();
        }
    }
}

/// Renders one response line. Scores carry full precision (shortest
/// round-trip formatting), so a client parsing `ln_prob` back recovers the
/// bit-exact f64 the one-shot `strength --precise` command prints. A
/// client-supplied trace id is echoed as `"trace_id"`.
pub(super) fn render_response(
    id: Option<u64>,
    trace_id: Option<u64>,
    outcome: &ScoreOutcome,
) -> String {
    let mut out = String::with_capacity(64);
    out.push('{');
    if let Some(id) = id {
        out.push_str("\"id\":");
        out.push_str(&id.to_string());
        out.push(',');
    }
    if let Some(trace_id) = trace_id {
        out.push_str("\"trace_id\":");
        out.push_str(&trace_id.to_string());
        out.push(',');
    }
    match outcome {
        ScoreOutcome::Score(lp) => {
            out.push_str("\"ok\":true,\"ln_prob\":");
            write_json_f64(&mut out, *lp);
        }
        ScoreOutcome::Unscorable(why) => {
            out.push_str("\"ok\":false,\"error\":");
            write_json_str(&mut out, why);
        }
        ScoreOutcome::Rejected {
            retry_after_ms,
            draining,
        } => {
            out.push_str("\"ok\":false,\"rejected\":true,\"draining\":");
            out.push_str(if *draining { "true" } else { "false" });
            out.push_str(",\"retry_after_ms\":");
            out.push_str(&retry_after_ms.to_string());
            out.push_str(",\"error\":");
            let why = if *draining {
                "server is draining; do not retry here"
            } else {
                "server at capacity; retry after the hinted delay"
            };
            write_json_str(&mut out, why);
        }
        ScoreOutcome::Shed(reason) => {
            out.push_str("\"ok\":false,\"shed\":true,\"error\":");
            let why = match reason {
                super::engine::ShedReason::DeadlineExpired => {
                    "deadline expired before a forward slot opened"
                }
                super::engine::ShedReason::Disconnected => "connection closed before scoring",
            };
            write_json_str(&mut out, why);
        }
        ScoreOutcome::Failed(why) => {
            out.push_str("\"ok\":false,\"failed\":true,\"error\":");
            write_json_str(&mut out, why);
        }
    }
    out.push_str("}\n");
    out
}

pub(super) fn render_error(id: Option<u64>, why: &str) -> String {
    render_response(id, None, &ScoreOutcome::Unscorable(why.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_parsing_accepts_optional_fields_and_rejects_garbage() {
        let (pw, id, dl, tr) = parse_request(r#"{"password":"hunter2"}"#).unwrap();
        assert_eq!(pw, "hunter2");
        assert_eq!(id, None);
        assert_eq!(dl, None);
        assert_eq!(tr, None);
        let (pw, id, dl, tr) =
            parse_request(r#"{"password":"a b","id":7,"deadline_ms":250,"trace_id":99}"#).unwrap();
        assert_eq!(pw, "a b");
        assert_eq!(id, Some(7));
        assert_eq!(dl, Some(Duration::from_millis(250)));
        assert_eq!(tr, Some(99));
        assert!(parse_request("not json").is_err());
        assert!(parse_request("[1,2]").is_err());
        assert!(parse_request(r#"{"password":12}"#).is_err());
        assert!(parse_request(r#"{"id":7}"#).is_err());
    }

    #[test]
    fn responses_render_as_single_json_lines() {
        let ok = render_response(Some(3), None, &ScoreOutcome::Score(-12.5));
        assert_eq!(ok, "{\"id\":3,\"ok\":true,\"ln_prob\":-12.5}\n");
        let rejected = render_response(
            None,
            None,
            &ScoreOutcome::Rejected {
                retry_after_ms: 50,
                draining: false,
            },
        );
        assert!(rejected.starts_with("{\"ok\":false,\"rejected\":true,\"draining\":false"));
        assert!(rejected.contains("\"retry_after_ms\":50"));
        // Full-precision score survives a JSON round-trip bit-exactly.
        let lp = -123.456_789_012_345_67_f64;
        let line = render_response(None, None, &ScoreOutcome::Score(lp));
        let parsed = parse_json(line.trim()).unwrap();
        assert_eq!(parsed.get("ln_prob").and_then(JsonValue::as_f64), Some(lp));
    }

    #[test]
    fn client_trace_id_is_echoed_before_the_body() {
        let line = render_response(Some(1), Some(777), &ScoreOutcome::Score(-2.0));
        assert_eq!(
            line,
            "{\"id\":1,\"trace_id\":777,\"ok\":true,\"ln_prob\":-2}\n"
        );
        let parsed = parse_json(line.trim()).unwrap();
        assert_eq!(
            parsed.get("trace_id").and_then(JsonValue::as_f64),
            Some(777.0)
        );
    }
}
