//! `pagpass serve`: a fault-tolerant strength-scoring server.
//!
//! The server turns [`InferenceSession::score_batch`] into a long-running
//! service: concurrent clients send passwords over newline-delimited JSON
//! and receive full-precision log-probabilities, with concurrent requests
//! continuously batched into single forwards over a broadcast KV-cache.
//!
//! The pipeline is `connections → admission queue → batching workers`:
//!
//! * `queue` — the bounded two-priority admission queue. Full means
//!   reject-with-retry-after at the protocol layer; the queue never grows
//!   past its cap, so load turns into explicit backpressure instead of
//!   latency.
//! * `engine` — batching workers with per-request deadlines, panic
//!   isolation via catch-unwind plus halving re-scores, an
//!   exactly-one-response guarantee, and a degraded mode that shrinks the
//!   batch ceiling under sustained deadline misses.
//! * `tcp` — the protocol layer: line framing, per-connection
//!   reader/writer threads, slow-client response dropping.
//! * `http` — an optional zero-dependency HTTP/1.1 observability plane
//!   (`GET /metrics`, `/healthz`, `/statusz`; `POST /score` bridging to
//!   the same queue and workers), enabled by passing a second listener to
//!   [`run_with_listeners`].
//!
//! Every admitted request carries a trace: admission, queue wait, batch
//! assembly, forward (or halving re-score), and response write each record
//! a child span under the request's `trace_id` into the telemetry span
//! ring; `trace_sample > 0` additionally exports every Nth request's full
//! span tree to the JSONL sink.
//!
//! Shutdown ([`CancelToken`] cancelled, typically by SIGINT/SIGTERM) is a
//! drain: the acceptor stops, readers stop admitting, workers score
//! everything already admitted, writers flush, and [`run_with_listener`]
//! returns a [`ServeReport`] whose counters must reconcile —
//! `admitted == completed + shed + failed`.
//!
//! Scores are bit-identical to the one-shot `strength` command: the
//! batched decode path is row-independent and responses carry
//! shortest-round-trip f64 formatting, so `serve` and `strength --precise`
//! agree byte-for-byte on every password.
//!
//! [`InferenceSession::score_batch`]: crate::InferenceSession::score_batch

mod engine;
mod http;
mod queue;
mod tcp;

use std::net::TcpListener;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::thread;
use std::time::Duration;

use pagpass_telemetry::{Field, Telemetry};

use crate::control::{CancelToken, FaultPlan};
use crate::error::CoreError;
use crate::model::PasswordModel;

use engine::{DegradeState, EngineConfig, ServeMetrics};
use queue::AdmissionQueue;
use tcp::{accept_loop, ConnShared};

pub use engine::{ScoreOutcome, ShedReason};

/// Tunables for one server run; `Default` matches the CLI defaults.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Hard ceiling on requests batched into one forward.
    pub max_batch: usize,
    /// How long a wave waits to fill after its first request.
    pub batch_window: Duration,
    /// Admission queue capacity; beyond it requests are rejected.
    pub queue_cap: usize,
    /// Scoring worker threads, each owning one inference session.
    pub sessions: usize,
    /// Singleton panic re-scores before a request is declared poisoned.
    pub retries: u32,
    /// Consecutive deadline-miss waves before the batch ceiling halves.
    pub degrade_after: u32,
    /// Consecutive clean waves before the ceiling doubles back.
    pub recover_after: u32,
    /// Deadline applied to requests that do not carry `deadline_ms`.
    pub default_deadline: Option<Duration>,
    /// Backoff hint attached to queue-full rejections.
    pub retry_after_ms: u64,
    /// Export every Nth request's full span tree to the JSONL sink
    /// (0 = never; the in-memory span ring is always populated).
    pub trace_sample: u64,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            max_batch: 16,
            batch_window: Duration::from_millis(2),
            queue_cap: 256,
            sessions: 2,
            retries: 2,
            degrade_after: 3,
            recover_after: 8,
            default_deadline: None,
            retry_after_ms: 50,
            trace_sample: 0,
        }
    }
}

/// Final accounting for one server run, emitted as the `serve.summary`
/// event and returned to the caller.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeReport {
    /// Requests accepted into the queue.
    pub admitted: u64,
    /// Admitted requests answered with a score or a per-request error.
    pub completed: u64,
    /// Admitted requests dropped before scoring (deadline, disconnect).
    pub shed: u64,
    /// Admitted requests that panicked even alone, past all retries.
    pub failed: u64,
    /// Requests refused at admission (queue full or draining).
    pub rejected: u64,
    /// Malformed request lines (never admitted).
    pub bad_requests: u64,
    /// Scoring panics contained by the engine.
    pub panics: u64,
    /// Responses dropped for slow or vanished clients.
    pub dropped_responses: u64,
    /// Requests that hit the exactly-one-response backstop (always a bug).
    pub lost: u64,
    /// Median end-to-end latency of completed requests, if any completed.
    pub p50_latency_ms: Option<f64>,
    /// Tail end-to-end latency of completed requests, if any completed.
    pub p99_latency_ms: Option<f64>,
}

impl ServeReport {
    /// The no-silent-loss invariant: every admitted request was answered
    /// as completed, shed, or failed.
    #[must_use]
    pub fn reconciles(&self) -> bool {
        self.admitted == self.completed + self.shed + self.failed
    }
}

/// Runs the scoring server on an already-bound listener until `cancel`
/// fires, then drains and returns the final accounting.
///
/// The listener is switched to non-blocking and polled, so cancellation
/// is observed within tens of milliseconds without platform signal
/// plumbing. `fault` injects deterministic scoring panics (keyed on the
/// admission sequence number) for tests and load harnesses.
///
/// # Errors
///
/// Returns [`CoreError::Io`] if the listener cannot be configured.
pub fn run_with_listener(
    model: &PasswordModel,
    listener: &TcpListener,
    cfg: &ServeConfig,
    cancel: &CancelToken,
    tel: &Telemetry,
    fault: Option<&FaultPlan>,
) -> Result<ServeReport, CoreError> {
    run_with_listeners(model, listener, None, cfg, cancel, tel, fault)
}

/// Like [`run_with_listener`], with an optional second listener serving
/// the HTTP observability plane: `GET /metrics` (Prometheus text
/// exposition), `GET /healthz` (drain/degraded aware), `GET /statusz`
/// (queue depths, batch ceiling, recent traces as JSON), and
/// `POST /score` bridging to the same admission queue and workers as the
/// NDJSON protocol — scores are bit-identical and both planes share one
/// reconciliation invariant.
///
/// The HTTP plane deliberately outlives the drain: when `cancel` fires it
/// keeps answering (with `/healthz` flipped to `503 draining`) until every
/// admitted request has been scored, so monitors observe the drain instead
/// of a vanished endpoint.
///
/// # Errors
///
/// Returns [`CoreError::Io`] if a listener cannot be configured.
pub fn run_with_listeners(
    model: &PasswordModel,
    listener: &TcpListener,
    http_listener: Option<&TcpListener>,
    cfg: &ServeConfig,
    cancel: &CancelToken,
    tel: &Telemetry,
    fault: Option<&FaultPlan>,
) -> Result<ServeReport, CoreError> {
    listener.set_nonblocking(true)?;
    if let Some(hl) = http_listener {
        hl.set_nonblocking(true)?;
    }
    let queue = AdmissionQueue::new(cfg.queue_cap);
    let metrics = ServeMetrics::new(tel);
    metrics.effective_max_batch.set(cfg.max_batch.max(1) as f64);
    let engine_cfg = EngineConfig {
        max_batch: cfg.max_batch,
        batch_window: cfg.batch_window,
        retries: cfg.retries,
        degrade_after: cfg.degrade_after,
        recover_after: cfg.recover_after,
    };
    let degrade = DegradeState::new(&engine_cfg);
    let seq = AtomicU64::new(0);
    let active_readers = AtomicUsize::new(0);
    let connections = AtomicUsize::new(0);
    let tracer = tel.trace_recorder();
    let http_stop = CancelToken::new();
    let shared = ConnShared {
        queue: &queue,
        metrics: &metrics,
        cfg,
        server_cancel: cancel,
        seq: &seq,
        active_readers: &active_readers,
        connections: &connections,
        tracer: &tracer,
    };
    let http_shared = http::HttpShared {
        queue: &queue,
        metrics: &metrics,
        cfg,
        server_cancel: cancel,
        stop: &http_stop,
        seq: &seq,
        degrade: &degrade,
        tel,
        tracer: &tracer,
    };
    thread::scope(|s| {
        let mut workers = Vec::with_capacity(cfg.sessions.max(1));
        for _ in 0..cfg.sessions.max(1) {
            workers.push(s.spawn(|| {
                engine::worker_loop(model, &queue, &engine_cfg, &degrade, &metrics, fault, tel);
            }));
        }
        if let Some(hl) = http_listener {
            let http_shared = &http_shared;
            s.spawn(move || http::http_loop(s, hl, http_shared));
        }
        accept_loop(s, listener, &shared);
        // Drain: the acceptor has stopped; wait for every reader to stop
        // admitting, then close the queue so workers score what is left
        // and exit. Writers exit once the last responder drops.
        // ORD: Acquire pairs with the readers' AcqRel decrement so
        // zero here means every admission has been published.
        while active_readers.load(Ordering::Acquire) != 0 {
            thread::sleep(tcp::ACCEPT_POLL);
        }
        if !queue.is_empty() {
            tel.event(
                "progress",
                "serve.draining",
                &[("remaining", Field::U64(queue.len() as u64))],
            );
        }
        queue.close();
        // Join the workers explicitly: only once every admitted request
        // has been answered may the HTTP plane stop, so a monitor polling
        // /healthz observes the whole drain (503) before the endpoint
        // disappears.
        for w in workers {
            let _ = w.join();
        }
        http_stop.cancel();
    });
    let report = build_report(&metrics, tel);
    emit_summary(&report, tel);
    Ok(report)
}

fn build_report(metrics: &ServeMetrics, tel: &Telemetry) -> ServeReport {
    let mut snapshot = tel.snapshot();
    let latency = snapshot.histograms.remove("serve.latency.ms");
    let (p50, p99) = latency
        .map(|h| (h.quantile(0.50), h.quantile(0.99)))
        .unwrap_or((None, None));
    ServeReport {
        admitted: metrics.admitted.get(),
        completed: metrics.completed.get(),
        shed: metrics.shed.get(),
        failed: metrics.failed.get(),
        rejected: metrics.rejected.get(),
        bad_requests: metrics.bad_requests.get(),
        panics: metrics.panics.get(),
        dropped_responses: metrics.dropped_responses.get(),
        lost: metrics.lost.get(),
        p50_latency_ms: p50,
        p99_latency_ms: p99,
    }
}

fn emit_summary(report: &ServeReport, tel: &Telemetry) {
    tel.event(
        "summary",
        "serve.summary",
        &[
            (
                "kernel",
                Field::Str(crate::kernel::KernelChoice::current().to_string()),
            ),
            ("admitted", Field::U64(report.admitted)),
            ("completed", Field::U64(report.completed)),
            ("shed", Field::U64(report.shed)),
            ("failed", Field::U64(report.failed)),
            ("rejected", Field::U64(report.rejected)),
            ("bad_requests", Field::U64(report.bad_requests)),
            ("panics", Field::U64(report.panics)),
            ("dropped_responses", Field::U64(report.dropped_responses)),
            ("lost", Field::U64(report.lost)),
            ("reconciles", Field::Bool(report.reconciles())),
            (
                "p50_latency_ms",
                Field::F64(report.p50_latency_ms.unwrap_or(0.0)),
            ),
            (
                "p99_latency_ms",
                Field::F64(report.p99_latency_ms.unwrap_or(0.0)),
            ),
        ],
    );
}
