//! Zero-dependency HTTP/1.1 observability plane for the scoring server.
//!
//! A second listener (enabled by `--http-port`) serves four endpoints:
//!
//! * `GET /metrics` — Prometheus text exposition of the whole registry
//!   (counters, gauges, histograms with cumulative buckets).
//! * `GET /healthz` — `200 ok`, `200 degraded` (batch ceiling shrunk), or
//!   `503 draining` once shutdown began.
//! * `GET /statusz` — live JSON: queue depth and capacity, effective batch
//!   ceiling, pool state, terminal counters, and the most recent completed
//!   spans from the telemetry ring.
//! * `POST /score` — the same request object the NDJSON protocol accepts
//!   (`{"password", "id", "deadline_ms", "trace_id"}`), bridged to the
//!   same admission queue and scoring workers. The response body is the
//!   NDJSON response line, so scores are bit-identical across planes and
//!   both feed one reconciliation invariant.
//!
//! The parser is hand-rolled over `std::net` — request line, headers,
//! `Content-Length` bodies, HTTP/1.1 keep-alive — and caps the head at
//! [`MAX_HEAD_BYTES`] and the body at [`MAX_BODY_BYTES`]. The plane stays
//! up through the drain (see `run_with_listeners`): connections only close
//! once the `stop` token fires *and* the socket goes idle, so a monitor
//! holding a keep-alive connection observes `/healthz` flip to draining.

use std::io::{ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::Scope;
use std::time::{Duration, Instant};

use pagpass_telemetry::{render_prometheus, wall_clock_ms, Telemetry, TraceCtx, TraceRecorder};

use crate::control::{CancelToken, Deadline};

use super::engine::{DegradeState, ReqTrace, ScoreOutcome, ScoreRequest, ServeMetrics};
use super::queue::{AdmissionQueue, Priority, PushError};
use super::tcp::{self, ACCEPT_POLL};
use super::ServeConfig;

/// Hard cap on one request head (request line + headers).
const MAX_HEAD_BYTES: usize = 16 * 1024;

/// Hard cap on one request body; matches the NDJSON line cap.
const MAX_BODY_BYTES: usize = tcp::MAX_LINE_BYTES;

/// How long socket reads block before re-checking the stop token.
const READ_POLL: Duration = Duration::from_millis(50);

/// How long `POST /score` waits for the engine before giving up; far past
/// any plausible drain, so hitting it indicates a wedged server.
const SCORE_WAIT: Duration = Duration::from_secs(120);

/// Recent-span window returned by `GET /statusz`.
const STATUSZ_SPANS: usize = 128;

/// Everything an HTTP connection handler needs, borrowed from the server
/// scope.
pub(super) struct HttpShared<'a> {
    pub queue: &'a AdmissionQueue<ScoreRequest>,
    pub metrics: &'a Arc<ServeMetrics>,
    pub cfg: &'a ServeConfig,
    /// The server's drain token: cancelled means `/healthz` is draining
    /// and `POST /score` admissions are refused by the closed queue.
    pub server_cancel: &'a CancelToken,
    /// Fires only after the drain completes; closes the HTTP plane.
    pub stop: &'a CancelToken,
    pub seq: &'a AtomicU64,
    pub degrade: &'a DegradeState,
    pub tel: &'a Telemetry,
    pub tracer: &'a TraceRecorder,
}

/// Accepts observability connections until the stop token fires, spawning
/// one handler thread per connection into `scope`.
pub(super) fn http_loop<'scope>(
    scope: &'scope Scope<'scope, '_>,
    listener: &TcpListener,
    shared: &'scope HttpShared<'scope>,
) {
    while !shared.stop.is_cancelled() {
        match listener.accept() {
            Ok((stream, _peer)) => {
                scope.spawn(move || handle_connection(stream, shared));
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => std::thread::sleep(ACCEPT_POLL),
            // Transient accept errors: back off, keep serving.
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
}

/// One parsed HTTP request.
struct HttpRequest {
    method: String,
    path: String,
    body: Vec<u8>,
    keep_alive: bool,
}

/// Serves one connection: parse requests off the socket and answer them
/// until the client goes away, an error closes the stream, or the stop
/// token fires *and* the socket goes idle for one read-poll (so requests
/// already in flight at stop time are still answered).
fn handle_connection(mut stream: TcpStream, shared: &HttpShared<'_>) {
    if stream.set_read_timeout(Some(READ_POLL)).is_err() {
        return;
    }
    // ORD: gauge display only; churn tolerance is fine.
    let gauge = &shared.metrics.http_connections;
    gauge.set(gauge.get() + 1.0);
    serve_connection(&mut stream, shared);
    gauge.set((gauge.get() - 1.0).max(0.0));
}

fn serve_connection(stream: &mut TcpStream, shared: &HttpShared<'_>) {
    let mut acc: Vec<u8> = Vec::new();
    let mut buf = [0u8; 4096];
    loop {
        match take_request(&mut acc) {
            Ok(Some(req)) => {
                shared.metrics.http_requests.inc();
                let keep_alive = req.keep_alive;
                if !respond_to(stream, &req, shared) || !keep_alive {
                    return;
                }
                continue;
            }
            Ok(None) => {}
            Err(status) => {
                let _ = write_response(stream, status, "text/plain", b"bad request\n", false, None);
                return;
            }
        }
        match stream.read(&mut buf) {
            Ok(0) => return,
            Ok(n) => acc.extend_from_slice(&buf[..n]),
            // Interrupted: a signal (e.g. the SIGTERM that starts the
            // drain) landed on this thread mid-read; retry, don't close
            // the monitor's connection.
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                // Idle. Once the post-drain stop fired, an idle connection
                // has nothing left to wait for.
                if shared.stop.is_cancelled() && acc.is_empty() {
                    return;
                }
            }
            Err(_) => return,
        }
    }
}

/// Extracts one complete request from the front of `acc`, if present.
/// Returns `Err(status_line)` for malformed or oversized requests.
fn take_request(acc: &mut Vec<u8>) -> Result<Option<HttpRequest>, &'static str> {
    let Some(head_end) = find_head_end(acc) else {
        if acc.len() > MAX_HEAD_BYTES {
            return Err("431 Request Header Fields Too Large");
        }
        return Ok(None);
    };
    if head_end > MAX_HEAD_BYTES {
        return Err("431 Request Header Fields Too Large");
    }
    let head = String::from_utf8_lossy(&acc[..head_end]).into_owned();
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or_default();
    let mut parts = request_line.split_ascii_whitespace();
    let (Some(method), Some(path), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return Err("400 Bad Request");
    };
    if !version.starts_with("HTTP/1.") {
        return Err("505 HTTP Version Not Supported");
    }
    let mut content_length = 0usize;
    // HTTP/1.1 defaults to keep-alive; HTTP/1.0 defaults to close.
    let mut keep_alive = version != "HTTP/1.0";
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            continue;
        };
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim();
        if name == "content-length" {
            content_length = value.parse().map_err(|_| "400 Bad Request")?;
        } else if name == "connection" {
            let v = value.to_ascii_lowercase();
            if v.contains("close") {
                keep_alive = false;
            } else if v.contains("keep-alive") {
                keep_alive = true;
            }
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err("413 Content Too Large");
    }
    let body_start = head_end + 4;
    if acc.len() < body_start + content_length {
        return Ok(None); // Body still in flight.
    }
    let body = acc[body_start..body_start + content_length].to_vec();
    acc.drain(..body_start + content_length);
    Ok(Some(HttpRequest {
        method: method.to_string(),
        path: path.to_string(),
        body,
        keep_alive,
    }))
}

/// Byte offset of the `\r\n\r\n` head terminator, if present.
fn find_head_end(acc: &[u8]) -> Option<usize> {
    acc.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Routes one request. Returns false when the connection must close (a
/// write failed).
fn respond_to(stream: &mut TcpStream, req: &HttpRequest, shared: &HttpShared<'_>) -> bool {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/metrics") => {
            let body = render_prometheus(&shared.tel.snapshot());
            write_response(
                stream,
                "200 OK",
                "text/plain; version=0.0.4; charset=utf-8",
                body.as_bytes(),
                req.keep_alive,
                None,
            )
        }
        ("GET", "/healthz") => {
            let (status, body) = if shared.server_cancel.is_cancelled() {
                ("503 Service Unavailable", "draining\n")
            } else if shared.degrade.effective_max() < shared.cfg.max_batch.max(1) {
                ("200 OK", "degraded\n")
            } else {
                ("200 OK", "ok\n")
            };
            write_response(
                stream,
                status,
                "text/plain",
                body.as_bytes(),
                req.keep_alive,
                None,
            )
        }
        ("GET", "/statusz") => {
            let body = render_statusz(shared);
            write_response(
                stream,
                "200 OK",
                "application/json",
                body.as_bytes(),
                req.keep_alive,
                None,
            )
        }
        ("POST", "/score") => score_over_http(stream, req, shared),
        (_, "/metrics" | "/healthz" | "/statusz" | "/score") => write_response(
            stream,
            "405 Method Not Allowed",
            "text/plain",
            b"method not allowed\n",
            req.keep_alive,
            None,
        ),
        _ => write_response(
            stream,
            "404 Not Found",
            "text/plain",
            b"not found\n",
            req.keep_alive,
            None,
        ),
    }
}

/// Bridges one `POST /score` body — the NDJSON request object — into the
/// shared admission queue, waits for the engine's answer, and maps the
/// outcome to an HTTP status. The body of every answered request is the
/// exact NDJSON response line, bit-identical scores included.
fn score_over_http(stream: &mut TcpStream, req: &HttpRequest, shared: &HttpShared<'_>) -> bool {
    let admit_started = Instant::now();
    let admit_wall_ms = wall_clock_ms();
    let Ok(line) = std::str::from_utf8(&req.body) else {
        shared.metrics.bad_requests.inc();
        let body = tcp::render_error(None, "bad request: body is not UTF-8");
        return write_response(
            stream,
            "400 Bad Request",
            "application/json",
            body.as_bytes(),
            req.keep_alive,
            None,
        );
    };
    let (password, id, explicit_deadline, client_trace_id) = match tcp::parse_request(line.trim()) {
        Ok(parts) => parts,
        Err(why) => {
            shared.metrics.bad_requests.inc();
            let body = tcp::render_error(None, &why);
            return write_response(
                stream,
                "400 Bad Request",
                "application/json",
                body.as_bytes(),
                req.keep_alive,
                None,
            );
        }
    };
    let deadline = explicit_deadline
        .map(Deadline::after)
        .or_else(|| shared.cfg.default_deadline.map(Deadline::after));
    let priority = if explicit_deadline.is_some() {
        Priority::High
    } else {
        Priority::Normal
    };
    // ORD: Relaxed — seq only needs uniqueness; the queue push is the
    // synchronizing op, exactly as in the NDJSON plane.
    let seq = shared.seq.fetch_add(1, Ordering::Relaxed);
    let sampled = shared.cfg.trace_sample > 0 && seq.is_multiple_of(shared.cfg.trace_sample);
    let trace = ReqTrace::new(client_trace_id, sampled);
    let (outcome_tx, outcome_rx) = mpsc::sync_channel::<ScoreOutcome>(1);
    let responder = move |outcome: ScoreOutcome| {
        // The handler thread may have timed out and gone; dropping the
        // outcome then is fine — terminal accounting already happened.
        let _ = outcome_tx.send(outcome);
    };
    let request = ScoreRequest::new(
        seq,
        password,
        deadline,
        CancelToken::new(),
        Arc::clone(shared.metrics),
        shared.tracer.clone(),
        trace,
        responder,
    );
    shared.tracer.record(
        TraceCtx::child_of(trace.trace_id, trace.root_span),
        "serve.admission",
        admit_wall_ms,
        admit_started.elapsed().as_secs_f64() * 1e3,
        trace.sampled,
    );
    match shared.queue.push(request, priority) {
        Ok(()) => {
            shared.metrics.admitted.inc();
            shared.metrics.queue_depth.set(shared.queue.len() as f64);
        }
        Err(PushError::Full(mut request)) => request.respond(ScoreOutcome::Rejected {
            retry_after_ms: shared.cfg.retry_after_ms,
            draining: false,
        }),
        Err(PushError::Closed(mut request)) => request.respond(ScoreOutcome::Rejected {
            retry_after_ms: shared.cfg.retry_after_ms,
            draining: true,
        }),
    }
    let Ok(outcome) = outcome_rx.recv_timeout(SCORE_WAIT) else {
        return write_response(
            stream,
            "504 Gateway Timeout",
            "text/plain",
            b"scoring timed out\n",
            false,
            None,
        );
    };
    let (status, retry_after) = match &outcome {
        ScoreOutcome::Rejected { draining: true, .. } => ("503 Service Unavailable", None),
        ScoreOutcome::Rejected {
            draining: false,
            retry_after_ms,
        } => ("429 Too Many Requests", Some(*retry_after_ms)),
        _ => ("200 OK", None),
    };
    let echo = trace.client_supplied.then_some(trace.trace_id);
    let body = tcp::render_response(id, echo, &outcome);
    let write_started = Instant::now();
    let write_wall_ms = wall_clock_ms();
    let ok = write_response(
        stream,
        status,
        "application/json",
        body.as_bytes(),
        req.keep_alive,
        retry_after,
    );
    let write_ms = write_started.elapsed().as_secs_f64() * 1e3;
    shared.metrics.response_write.record(write_ms);
    shared.tracer.record(
        TraceCtx::child_of(trace.trace_id, trace.root_span),
        "serve.response_write",
        write_wall_ms,
        write_ms,
        trace.sampled,
    );
    ok
}

/// Live server state as one JSON document.
fn render_statusz(shared: &HttpShared<'_>) -> String {
    use std::fmt::Write as _;
    let m = shared.metrics;
    let mut out = String::with_capacity(1024);
    let _ = write!(
        out,
        "{{\"draining\":{},\"queue_depth\":{},\"queue_cap\":{},\
         \"effective_max_batch\":{},\"max_batch\":{},\"sessions\":{},\
         \"connections\":{},\"http_connections\":{},\
         \"admitted\":{},\"completed\":{},\"shed\":{},\"failed\":{},\
         \"rejected\":{},\"lost\":{},\"recent_spans\":[",
        shared.server_cancel.is_cancelled(),
        shared.queue.len(),
        shared.cfg.queue_cap,
        shared.degrade.effective_max(),
        shared.cfg.max_batch.max(1),
        shared.cfg.sessions.max(1),
        m.connections.get() as i64,
        m.http_connections.get() as i64,
        m.admitted.get(),
        m.completed.get(),
        m.shed.get(),
        m.failed.get(),
        m.rejected.get(),
        m.lost.get(),
    );
    let spans = shared.tel.spans().snapshot();
    let skip = spans.len().saturating_sub(STATUSZ_SPANS);
    for (i, s) in spans.iter().skip(skip).enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"trace_id\":{},\"span_id\":{},\"parent_span_id\":{},\"name\":",
            s.trace_id, s.span_id, s.parent_span_id
        );
        pagpass_telemetry::write_json_str(&mut out, &s.name);
        let _ = write!(out, ",\"start_ms\":{},\"ms\":", s.start_ms);
        pagpass_telemetry::write_json_f64(&mut out, s.dur_ms);
        out.push('}');
    }
    out.push_str("]}\n");
    out
}

/// Writes one response with `Content-Length` framing. Returns false on a
/// write error (caller closes the connection).
fn write_response(
    stream: &mut TcpStream,
    status: &str,
    content_type: &str,
    body: &[u8],
    keep_alive: bool,
    retry_after_ms: Option<u64>,
) -> bool {
    use std::fmt::Write as _;
    let mut head = String::with_capacity(160);
    let _ = write!(
        head,
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\n",
        body.len()
    );
    if let Some(ms) = retry_after_ms {
        // Retry-After is whole seconds; round the hint up.
        let _ = write!(head, "Retry-After: {}\r\n", ms.div_ceil(1000).max(1));
    }
    let _ = write!(
        head,
        "Connection: {}\r\n\r\n",
        if keep_alive { "keep-alive" } else { "close" }
    );
    stream.write_all(head.as_bytes()).is_ok() && stream.write_all(body).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn push(acc: &mut Vec<u8>, s: &str) {
        acc.extend_from_slice(s.as_bytes());
    }

    #[test]
    fn parses_a_get_request_and_keep_alive_defaults() {
        let mut acc = Vec::new();
        push(&mut acc, "GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n");
        let req = take_request(&mut acc).unwrap().unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/metrics");
        assert!(req.keep_alive, "HTTP/1.1 defaults to keep-alive");
        assert!(req.body.is_empty());
        assert!(acc.is_empty());

        let mut acc = Vec::new();
        push(&mut acc, "GET / HTTP/1.0\r\n\r\n");
        let req = take_request(&mut acc).unwrap().unwrap();
        assert!(!req.keep_alive, "HTTP/1.0 defaults to close");

        let mut acc = Vec::new();
        push(&mut acc, "GET / HTTP/1.1\r\nConnection: close\r\n\r\n");
        let req = take_request(&mut acc).unwrap().unwrap();
        assert!(!req.keep_alive);
    }

    #[test]
    fn parses_content_length_bodies_and_pipelining() {
        let mut acc = Vec::new();
        push(
            &mut acc,
            "POST /score HTTP/1.1\r\nContent-Length: 4\r\n\r\nbodyGET /healthz HTTP/1.1\r\n\r\n",
        );
        let first = take_request(&mut acc).unwrap().unwrap();
        assert_eq!(first.method, "POST");
        assert_eq!(first.body, b"body");
        let second = take_request(&mut acc).unwrap().unwrap();
        assert_eq!(second.path, "/healthz");
        assert!(take_request(&mut acc).unwrap().is_none());
    }

    #[test]
    fn incomplete_requests_wait_for_more_bytes() {
        let mut acc = Vec::new();
        push(
            &mut acc,
            "POST /score HTTP/1.1\r\nContent-Length: 10\r\n\r\nhal",
        );
        assert!(take_request(&mut acc).unwrap().is_none());
        push(&mut acc, "f-and-rest");
        // 3 + 10 > 10: the body completes at exactly 10 bytes.
        let req = take_request(&mut acc).unwrap().unwrap();
        assert_eq!(req.body, b"half-and-r");
        assert_eq!(acc, b"est");
    }

    #[test]
    fn oversized_and_malformed_requests_are_rejected() {
        let mut acc = vec![b'A'; MAX_HEAD_BYTES + 1];
        assert!(take_request(&mut acc).is_err());

        let mut acc = Vec::new();
        push(&mut acc, "garbage\r\n\r\n");
        assert!(take_request(&mut acc).is_err());

        let mut acc = Vec::new();
        push(
            &mut acc,
            &format!(
                "POST /score HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
                MAX_BODY_BYTES + 1
            ),
        );
        assert!(take_request(&mut acc).is_err());

        let mut acc = Vec::new();
        push(&mut acc, "GET / HTTP/2\r\n\r\n");
        assert!(take_request(&mut acc).is_err());
    }
}
