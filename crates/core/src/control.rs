//! Runtime control for long generation and training runs: cooperative
//! cancellation and deterministic fault injection.

use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

/// A shared cancellation flag.
///
/// Cloning is cheap (an `Arc` bump); every clone observes the same flag.
/// Consumers — the D&C-GEN worker pool and the training loop — poll it at
/// task and batch boundaries, so cancellation drains cleanly: in-flight
/// work finishes, partial results are kept, and a final journal or
/// checkpoint is written before control returns.
///
/// # Examples
///
/// ```
/// use pagpassgpt::CancelToken;
///
/// let token = CancelToken::new();
/// let watcher = token.clone();
/// assert!(!watcher.is_cancelled());
/// token.cancel();
/// assert!(watcher.is_cancelled());
/// ```
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    #[must_use]
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Requests cancellation. Idempotent; safe from any thread (including
    /// a signal-watcher thread).
    pub fn cancel(&self) {
        // ORD: SeqCst — the cancel flag is set from signal handlers and
        // polled by every worker; a single total order keeps "cancelled"
        // consistent across checkpoint, drain, and telemetry decisions.
        self.flag.store(true, Ordering::SeqCst);
    }

    /// Whether cancellation has been requested.
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        // ORD: SeqCst load side of the cancel flag (see `cancel`).
        self.flag.load(Ordering::SeqCst)
    }
}

/// A monotonic deadline whose expiry instant is fixed at construction.
///
/// Wraps `Instant::now() + budget` captured exactly once, so every
/// subsequent [`expired`](Deadline::expired) check compares against the
/// same monotonic instant — repeated polling never re-reads the wall
/// clock to recompute the target, and the deadline is immune to system
/// clock adjustments. Both the D&C-GEN worker pool (`--deadline-secs`)
/// and the serve request scheduler (per-request `deadline_ms`) poll
/// deadlines through this type.
///
/// Deadlines bound *real elapsed time*, never generated work: expiry
/// stops a run early but must not change any bytes emitted before the
/// stop. Copyable so workers can poll a shared deadline without
/// synchronization.
///
/// # Examples
///
/// ```
/// use std::time::Duration;
/// use pagpassgpt::Deadline;
///
/// let d = Deadline::after(Duration::from_secs(3600));
/// assert!(!d.expired());
/// assert!(d.remaining() > Duration::from_secs(3500));
///
/// let past = Deadline::after(Duration::ZERO);
/// assert!(past.expired());
/// assert_eq!(past.remaining(), Duration::ZERO);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Deadline {
    at: Instant,
}

impl Deadline {
    /// A deadline `budget` from now. The clock is read here, once.
    #[must_use]
    pub fn after(budget: Duration) -> Deadline {
        Deadline {
            at: Instant::now() + budget,
        }
    }

    /// Whether the deadline has passed.
    #[must_use]
    pub fn expired(&self) -> bool {
        Instant::now() >= self.at
    }

    /// Time left before expiry; `Duration::ZERO` once expired.
    #[must_use]
    pub fn remaining(&self) -> Duration {
        self.at.saturating_duration_since(Instant::now())
    }

    /// The earlier of two deadlines — e.g. a per-request deadline capped
    /// by a server-wide drain deadline.
    #[must_use]
    pub fn min(self, other: Deadline) -> Deadline {
        Deadline {
            at: self.at.min(other.at),
        }
    }
}

/// Deterministic fault injection for the fault-tolerance test-suite.
///
/// A `FaultPlan` is threaded into [`DcGen`](crate::DcGen) runs and training
/// via the options structs; production runs simply pass `None`. Every fault
/// is keyed on a deterministic quantity (task id, step index, write ordinal)
/// so injected failures reproduce exactly across runs — the same property
/// the rest of the codebase maintains for generation itself.
#[derive(Debug, Default)]
pub struct FaultPlan {
    /// Task ids whose *first* execution attempt panics (retries succeed).
    panic_once: Mutex<HashSet<u64>>,
    /// Task ids whose every execution attempt panics (exhausts the retry
    /// budget and lands in `failed_tasks`).
    panic_always: HashSet<u64>,
    /// Optimization steps whose loss is replaced with NaN.
    nan_loss_steps: HashSet<u64>,
    /// Journal/checkpoint write ordinals (0-based) that fail with an
    /// injected I/O error.
    fail_writes: HashSet<u64>,
    writes_seen: Mutex<u64>,
    /// Cancel the run after this many tasks complete (simulated kill).
    cancel_after_tasks: Option<u64>,
}

impl FaultPlan {
    /// A plan that injects nothing.
    #[must_use]
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// The task with id `id` panics on its first attempt only.
    #[must_use]
    pub fn panic_task_once(mut self, id: u64) -> FaultPlan {
        self.panic_once.get_mut().insert(id);
        self
    }

    /// The task with id `id` panics on every attempt.
    #[must_use]
    pub fn panic_task_always(mut self, id: u64) -> FaultPlan {
        self.panic_always.insert(id);
        self
    }

    /// The loss at optimization step `step` (0-based) comes back NaN.
    #[must_use]
    pub fn nan_loss_at_step(mut self, step: u64) -> FaultPlan {
        self.nan_loss_steps.insert(step);
        self
    }

    /// The `ordinal`-th journal/checkpoint write (0-based) fails.
    #[must_use]
    pub fn fail_write(mut self, ordinal: u64) -> FaultPlan {
        self.fail_writes.insert(ordinal);
        self
    }

    /// Cancel the run once `n` tasks have completed.
    #[must_use]
    pub fn cancel_after_tasks(mut self, n: u64) -> FaultPlan {
        self.cancel_after_tasks = Some(n);
        self
    }

    /// Runtime hook: should this execution attempt of task `id` panic?
    /// Consumes one-shot entries.
    pub(crate) fn take_task_panic(&self, id: u64) -> bool {
        if self.panic_always.contains(&id) {
            return true;
        }
        self.panic_once.lock().remove(&id)
    }

    /// Runtime hook: replacement loss for step `step`, if any.
    pub(crate) fn loss_override(&self, step: u64) -> Option<f32> {
        self.nan_loss_steps.contains(&step).then_some(f32::NAN)
    }

    /// Runtime hook: should the next sidecar write fail? Advances the
    /// write ordinal either way.
    pub(crate) fn take_write_failure(&self) -> bool {
        let mut seen = self.writes_seen.lock();
        let ordinal = *seen;
        *seen += 1;
        self.fail_writes.contains(&ordinal)
    }

    /// Runtime hook: has the simulated kill point been reached?
    pub(crate) fn should_cancel(&self, completed_tasks: u64) -> bool {
        self.cancel_after_tasks
            .is_some_and(|n| completed_tasks >= n)
    }
}

/// Message carried by panics injected via [`FaultPlan::panic_task_once`] /
/// [`FaultPlan::panic_task_always`]; visible in `failed_tasks` errors.
pub(crate) const INJECTED_PANIC: &str = "injected fault: task panic";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cancel_token_is_shared() {
        let a = CancelToken::new();
        let b = a.clone();
        a.cancel();
        assert!(b.is_cancelled());
        a.cancel(); // idempotent
        assert!(a.is_cancelled());
    }

    #[test]
    fn deadline_is_fixed_at_construction() {
        let d = Deadline::after(Duration::from_secs(600));
        assert!(!d.expired());
        let r1 = d.remaining();
        let r2 = d.remaining();
        // Remaining time only shrinks; the target instant never moves.
        assert!(r2 <= r1);
        assert!(r1 <= Duration::from_secs(600));
    }

    #[test]
    fn zero_budget_deadline_is_immediately_expired() {
        let d = Deadline::after(Duration::ZERO);
        assert!(d.expired());
        assert_eq!(d.remaining(), Duration::ZERO);
    }

    #[test]
    fn deadline_min_picks_the_earlier() {
        let soon = Deadline::after(Duration::ZERO);
        let late = Deadline::after(Duration::from_secs(600));
        assert_eq!(soon.min(late), soon);
        assert_eq!(late.min(soon), soon);
    }

    #[test]
    fn panic_once_fires_exactly_once() {
        let plan = FaultPlan::new().panic_task_once(7);
        assert!(plan.take_task_panic(7));
        assert!(!plan.take_task_panic(7), "one-shot faults must clear");
        assert!(!plan.take_task_panic(8));
    }

    #[test]
    fn panic_always_never_clears() {
        let plan = FaultPlan::new().panic_task_always(3);
        assert!(plan.take_task_panic(3));
        assert!(plan.take_task_panic(3));
    }

    #[test]
    fn write_failures_follow_ordinals() {
        let plan = FaultPlan::new().fail_write(1);
        assert!(!plan.take_write_failure()); // ordinal 0
        assert!(plan.take_write_failure()); // ordinal 1
        assert!(!plan.take_write_failure()); // ordinal 2
    }

    #[test]
    fn nan_loss_and_kill_points() {
        let plan = FaultPlan::new().nan_loss_at_step(5).cancel_after_tasks(2);
        assert!(plan.loss_override(5).unwrap().is_nan());
        assert!(plan.loss_override(4).is_none());
        assert!(!plan.should_cancel(1));
        assert!(plan.should_cancel(2));
    }
}
