//! Crash-safe journaling of D&C-GEN runs.
//!
//! A journal is a consistent snapshot of an in-progress run: the
//! configuration needed to reproduce sampling, the pattern table (so task
//! pattern indices stay meaningful), cumulative statistics, and every task
//! not yet completed (queued *and* in-flight — an interrupted task is simply
//! re-run, which is safe because a task's output is only counted when it
//! completes). [`DcGen::resume`](crate::DcGen::resume) rebuilds the worker
//! pool from a journal and continues where the snapshot left off.
//!
//! The format is a line-oriented text file with a trailing CRC32, written
//! atomically (temp file + rename). Text keeps it inspectable in an
//! emergency; the CRC and the atomic rename mean a crash can never leave a
//! half-written journal that parses.
//!
//! Floating-point fields (temperature, quotas) are stored as hex-encoded
//! IEEE-754 bits so that save/load roundtrips bit-exactly — quota arithmetic
//! drives task splitting, and resumed runs must replay it identically.

use std::fmt::Write as _;
use std::path::Path;

use pagpass_nn::{atomic_write, crc32};
use pagpass_patterns::Pattern;

use crate::dcgen::FailedTask;
use crate::kernel::KernelChoice;
use crate::sched::SchedulerKind;
use crate::CoreError;

/// Header of journals written by builds before the decode-kernel field
/// existed. Still accepted on load; the kernel defaults to
/// [`KernelChoice::Pinned`], the only kernel those builds had.
const HEADER_V1: &str = "PAGPASS-DCGEN-JOURNAL v1";

/// First line of every journal this build writes. v2 appended the decode
/// kernel to the stats line; the rest of the format is unchanged.
const HEADER_V2: &str = "PAGPASS-DCGEN-JOURNAL v2";

/// A pending subtask as persisted in a journal.
#[derive(Debug, Clone, PartialEq)]
pub struct JournalTask {
    /// Stable task id (also the per-task RNG key).
    pub id: u64,
    /// Index into [`DcGenJournal::patterns`].
    pub pattern_idx: usize,
    /// Password prefix fixed so far.
    pub prefix: String,
    /// Remaining guess quota for this subtask.
    pub quota: f64,
}

/// A consistent snapshot of a D&C-GEN run, sufficient to resume it.
#[derive(Debug, Clone, PartialEq)]
pub struct DcGenJournal {
    /// Total guess budget `N` of the original run.
    pub total: u64,
    /// Division threshold `T`.
    pub threshold: u64,
    /// Leaf sampling temperature.
    pub temperature: f32,
    /// Base RNG seed (combined with task ids for per-task streams).
    pub seed: u64,
    /// Worker count of the original run.
    pub workers: usize,
    /// Retry budget per task.
    pub max_task_retries: u32,
    /// Journal cadence (completed tasks between snapshots).
    pub journal_every: u64,
    /// Scheduler that wrote this journal. Task semantics are
    /// scheduler-specific (D&C-GEN quotas vs SOPG log-probs), so
    /// [`check_scheduler`](Self::check_scheduler) refuses to resume under
    /// a different one. Journals from older builds default to
    /// [`SchedulerKind::Dcgen`], the only scheduler that existed then.
    pub scheduler: SchedulerKind,
    /// CRC32 of the scheduling-relevant configuration
    /// ([`DcGenConfig::sched_config_hash`](crate::DcGenConfig::sched_config_hash));
    /// `0` in journals from older builds.
    pub sched_config_hash: u32,
    /// SOPG frontier cap of the original run (`0` = unbounded or not
    /// SOPG).
    pub frontier_cap: u64,
    /// Decode kernel the run was started under. Sampled token streams are
    /// kernel-specific (pinned f32 and quantized int8 logits differ), so
    /// [`check_kernel`](Self::check_kernel) refuses to resume under a
    /// different one. Journals from older builds default to
    /// [`KernelChoice::Pinned`], the only kernel that existed then.
    pub kernel: KernelChoice,
    /// Pattern table; task `pattern_idx` fields index into this.
    pub patterns: Vec<Pattern>,
    /// Passwords emitted so far. An output file being resumed should be
    /// truncated to exactly this many lines first: passwords produced after
    /// the snapshot will be regenerated.
    pub emitted: u64,
    /// Tasks completed so far.
    pub completed: u64,
    /// Leaf tasks executed so far.
    pub leaves: usize,
    /// Model-guided divisions so far.
    pub expansions: usize,
    /// Subtasks deleted (quota under one password) so far.
    pub deleted: usize,
    /// Patterns that received budget in the initial allocation.
    pub patterns_used: usize,
    /// Task retries performed so far.
    pub retries: u64,
    /// Within-leaf duplicate passwords observed so far (repeats can only
    /// arise inside one leaf, so this is the run's total duplicate count).
    pub leaf_duplicates: u64,
    /// KV-cache positions served from worker inference sessions instead of
    /// recomputed. Efficiency statistic only; resuming restores it so the
    /// final report covers the whole run.
    pub prefix_cache_hits: u64,
    /// Next unassigned task id.
    pub next_id: u64,
    /// Every task not yet completed at snapshot time.
    pub tasks: Vec<JournalTask>,
    /// Tasks abandoned after exhausting their retry budget.
    pub failed: Vec<FailedTask>,
}

/// Strips tab/newline characters so free-text fields stay single-field,
/// single-line.
fn sanitize(s: &str) -> String {
    s.replace(['\t', '\n', '\r'], " ")
}

impl DcGenJournal {
    /// Serializes the journal to its text form (including the CRC line).
    #[must_use]
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{HEADER_V2}");
        let _ = writeln!(
            out,
            "config {} {} {:08x} {} {} {} {}",
            self.total,
            self.threshold,
            self.temperature.to_bits(),
            self.seed,
            self.workers,
            self.max_task_retries,
            self.journal_every,
        );
        let _ = writeln!(out, "patterns {}", self.patterns.len());
        for p in &self.patterns {
            let _ = writeln!(out, "{p}");
        }
        let _ = writeln!(
            out,
            "stats {} {} {} {} {} {} {} {} {} {} {} {:08x} {} {}",
            self.emitted,
            self.completed,
            self.leaves,
            self.expansions,
            self.deleted,
            self.patterns_used,
            self.retries,
            self.next_id,
            self.leaf_duplicates,
            self.prefix_cache_hits,
            self.scheduler,
            self.sched_config_hash,
            self.frontier_cap,
            self.kernel,
        );
        let _ = writeln!(out, "tasks {}", self.tasks.len());
        for t in &self.tasks {
            let _ = writeln!(
                out,
                "{}\t{}\t{}\t{:016x}",
                t.id,
                t.pattern_idx,
                t.prefix,
                t.quota.to_bits()
            );
        }
        let _ = writeln!(out, "failed {}", self.failed.len());
        for f in &self.failed {
            let _ = writeln!(
                out,
                "{}\t{}\t{:016x}\t{}",
                sanitize(&f.pattern),
                f.prefix,
                f.quota.to_bits(),
                sanitize(&f.error)
            );
        }
        let crc = crc32(out.as_bytes());
        let _ = writeln!(out, "crc {crc:08x}");
        out
    }

    /// Parses a journal from its text form, verifying the trailing CRC.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Journal`] for malformed or corrupt input.
    pub fn from_text(text: &str) -> Result<DcGenJournal, CoreError> {
        let bad = |what: &str| CoreError::Journal(what.to_string());
        // Split off the final "crc XXXXXXXX" line and verify it first.
        let body_end = text
            .trim_end_matches('\n')
            .rfind('\n')
            .ok_or_else(|| bad("too short"))?
            + 1;
        let (body, crc_line) = text.split_at(body_end);
        let stored = crc_line
            .trim_end()
            .strip_prefix("crc ")
            .and_then(|h| u32::from_str_radix(h, 16).ok())
            .ok_or_else(|| bad("missing crc line"))?;
        let computed = crc32(body.as_bytes());
        if stored != computed {
            return Err(CoreError::Journal(format!(
                "checksum mismatch (stored {stored:08x}, computed {computed:08x})"
            )));
        }

        let mut lines = body.lines();
        let header = lines.next();
        if header != Some(HEADER_V2) && header != Some(HEADER_V1) {
            return Err(bad("bad header"));
        }
        let config: Vec<&str> = lines
            .next()
            .and_then(|l| l.strip_prefix("config "))
            .ok_or_else(|| bad("missing config line"))?
            .split(' ')
            .collect();
        if config.len() != 7 {
            return Err(bad("config field count"));
        }
        let uint = |s: &str| s.parse::<u64>().map_err(|_| bad("bad integer"));
        let total = uint(config[0])?;
        let threshold = uint(config[1])?;
        let temperature = f32::from_bits(
            u32::from_str_radix(config[2], 16).map_err(|_| bad("bad temperature bits"))?,
        );
        let seed = uint(config[3])?;
        let workers = uint(config[4])? as usize;
        let max_task_retries = uint(config[5])? as u32;
        let journal_every = uint(config[6])?;

        let n_patterns = lines
            .next()
            .and_then(|l| l.strip_prefix("patterns "))
            .and_then(|n| n.parse::<usize>().ok())
            .ok_or_else(|| bad("missing patterns line"))?;
        let mut patterns = Vec::with_capacity(n_patterns);
        for _ in 0..n_patterns {
            let line = lines.next().ok_or_else(|| bad("truncated pattern list"))?;
            patterns.push(line.parse::<Pattern>().map_err(|_| bad("bad pattern"))?);
        }

        let stats: Vec<&str> = lines
            .next()
            .and_then(|l| l.strip_prefix("stats "))
            .ok_or_else(|| bad("missing stats line"))?
            .split(' ')
            .collect();
        // 8 fields is the original layout; later builds appended leaf
        // duplicates, prefix-cache hits, the scheduler identity triple,
        // and the decode kernel. Older journals omit the trailing fields
        // and take their defaults.
        if !(8..=14).contains(&stats.len()) {
            return Err(bad("stats field count"));
        }
        let emitted = uint(stats[0])?;
        let completed = uint(stats[1])?;
        let leaves = uint(stats[2])? as usize;
        let expansions = uint(stats[3])? as usize;
        let deleted = uint(stats[4])? as usize;
        let patterns_used = uint(stats[5])? as usize;
        let retries = uint(stats[6])?;
        let next_id = uint(stats[7])?;
        // Fields 9+ were appended in later revisions; journals from older
        // builds omit them and default to zero (and, for the scheduler
        // name, to D&C-GEN — the only scheduler those builds had).
        let leaf_duplicates = stats.get(8).map_or(Ok(0), |s| uint(s))?;
        let prefix_cache_hits = stats.get(9).map_or(Ok(0), |s| uint(s))?;
        let scheduler = match stats.get(10) {
            Some(s) => s
                .parse::<SchedulerKind>()
                .map_err(|_| bad("bad scheduler name"))?,
            None => SchedulerKind::Dcgen,
        };
        let sched_config_hash = match stats.get(11) {
            Some(s) => u32::from_str_radix(s, 16).map_err(|_| bad("bad scheduler config hash"))?,
            None => 0,
        };
        let frontier_cap = stats.get(12).map_or(Ok(0), |s| uint(s))?;
        let kernel = match stats.get(13) {
            Some(s) => s
                .parse::<KernelChoice>()
                .map_err(|_| bad("bad kernel name"))?,
            None => KernelChoice::Pinned,
        };

        let n_tasks = lines
            .next()
            .and_then(|l| l.strip_prefix("tasks "))
            .and_then(|n| n.parse::<usize>().ok())
            .ok_or_else(|| bad("missing tasks line"))?;
        let mut tasks = Vec::with_capacity(n_tasks);
        for _ in 0..n_tasks {
            let line = lines.next().ok_or_else(|| bad("truncated task list"))?;
            let fields: Vec<&str> = line.split('\t').collect();
            if fields.len() != 4 {
                return Err(bad("task field count"));
            }
            let pattern_idx = fields[1]
                .parse::<usize>()
                .map_err(|_| bad("bad task index"))?;
            if pattern_idx >= patterns.len() {
                return Err(bad("task pattern index out of range"));
            }
            tasks.push(JournalTask {
                id: uint(fields[0])?,
                pattern_idx,
                prefix: fields[2].to_string(),
                quota: f64::from_bits(
                    u64::from_str_radix(fields[3], 16).map_err(|_| bad("bad quota bits"))?,
                ),
            });
        }

        let n_failed = lines
            .next()
            .and_then(|l| l.strip_prefix("failed "))
            .and_then(|n| n.parse::<usize>().ok())
            .ok_or_else(|| bad("missing failed line"))?;
        let mut failed = Vec::with_capacity(n_failed);
        for _ in 0..n_failed {
            let line = lines.next().ok_or_else(|| bad("truncated failed list"))?;
            let fields: Vec<&str> = line.split('\t').collect();
            if fields.len() != 4 {
                return Err(bad("failed field count"));
            }
            failed.push(FailedTask {
                pattern: fields[0].to_string(),
                prefix: fields[1].to_string(),
                quota: f64::from_bits(
                    u64::from_str_radix(fields[2], 16).map_err(|_| bad("bad quota bits"))?,
                ),
                error: fields[3].to_string(),
            });
        }

        Ok(DcGenJournal {
            total,
            threshold,
            temperature,
            seed,
            workers,
            max_task_retries,
            journal_every,
            scheduler,
            sched_config_hash,
            frontier_cap,
            kernel,
            patterns,
            emitted,
            completed,
            leaves,
            expansions,
            deleted,
            patterns_used,
            retries,
            leaf_duplicates,
            prefix_cache_hits,
            next_id,
            tasks,
            failed,
        })
    }

    /// Verifies that this journal was written by `requested`'s scheduler.
    ///
    /// Task quotas are scheduler-specific state (guess quotas for the
    /// quota-splitting schedulers, log-probabilities for SOPG), so
    /// feeding one scheduler's journal to another would silently
    /// misinterpret them. Resume paths call this before rebuilding the
    /// pool.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Journal`] naming both schedulers when they
    /// differ.
    pub fn check_scheduler(&self, requested: SchedulerKind) -> Result<(), CoreError> {
        if self.scheduler != requested {
            return Err(CoreError::Journal(format!(
                "journal was written by the `{}` scheduler but this resume requested `{requested}`; \
                 rerun with --scheduler {} or start a fresh run",
                self.scheduler, self.scheduler
            )));
        }
        Ok(())
    }

    /// Verifies that this journal was written under `requested`'s decode
    /// kernel.
    ///
    /// A resumed run replays the original RNG streams against the model's
    /// logits, and pinned-f32 and quantized-int8 logits differ — resuming
    /// under the other kernel would splice two incompatible password
    /// streams into one output file. Resume paths call this before
    /// rebuilding the pool.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Journal`] naming both kernels when they
    /// differ.
    pub fn check_kernel(&self, requested: KernelChoice) -> Result<(), CoreError> {
        if self.kernel != requested {
            return Err(CoreError::Journal(format!(
                "journal was written by the `{}` kernel but this resume requested `{requested}`; \
                 rerun with --kernel {} or start a fresh run",
                self.kernel, self.kernel
            )));
        }
        Ok(())
    }

    /// Writes the journal to `path` atomically.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn save(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        atomic_write(path, self.to_text().as_bytes())
    }

    /// Loads and verifies a journal written by [`save`](Self::save).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Io`] when the file cannot be read and
    /// [`CoreError::Journal`] when it is malformed or corrupt.
    pub fn load(path: impl AsRef<Path>) -> Result<DcGenJournal, CoreError> {
        let text = std::fs::read_to_string(path)?;
        DcGenJournal::from_text(&text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DcGenJournal {
        DcGenJournal {
            total: 1000,
            threshold: 64,
            temperature: 0.95,
            seed: 42,
            workers: 2,
            max_task_retries: 2,
            journal_every: 16,
            scheduler: SchedulerKind::Dcgen,
            sched_config_hash: 0x1234_abcd,
            frontier_cap: 0,
            kernel: KernelChoice::Pinned,
            patterns: vec!["L4N2".parse().unwrap(), "L8".parse().unwrap()],
            emitted: 300,
            completed: 7,
            leaves: 5,
            expansions: 2,
            deleted: 1,
            patterns_used: 2,
            retries: 1,
            leaf_duplicates: 4,
            prefix_cache_hits: 57,
            next_id: 11,
            tasks: vec![
                JournalTask {
                    id: 9,
                    pattern_idx: 0,
                    prefix: "ab".into(),
                    quota: 123.456,
                },
                JournalTask {
                    id: 10,
                    pattern_idx: 1,
                    prefix: String::new(),
                    quota: 7.0,
                },
            ],
            failed: vec![FailedTask {
                pattern: "L8".into(),
                prefix: "x".into(),
                quota: 3.5,
                error: "injected fault".into(),
            }],
        }
    }

    #[test]
    fn text_roundtrip_is_exact() {
        let j = sample();
        let parsed = DcGenJournal::from_text(&j.to_text()).unwrap();
        assert_eq!(parsed, j);
    }

    #[test]
    fn corruption_is_detected() {
        let text = sample().to_text();
        let tampered = text.replacen("300", "301", 1);
        assert!(matches!(
            DcGenJournal::from_text(&tampered),
            Err(CoreError::Journal(msg)) if msg.contains("checksum")
        ));
    }

    #[test]
    fn truncation_is_detected() {
        let text = sample().to_text();
        let half = &text[..text.len() / 2];
        assert!(DcGenJournal::from_text(half).is_err());
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("pagpass_journal_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.journal");
        let j = sample();
        j.save(&path).unwrap();
        assert_eq!(DcGenJournal::load(&path).unwrap(), j);
        std::fs::remove_dir_all(dir).ok();
    }

    /// Re-serializes `j` with `strip` trailing stats fields removed, the
    /// header downgraded to v1, and the CRC recomputed, imitating a
    /// journal from an older build.
    fn legacy_text(j: &DcGenJournal, strip: usize) -> String {
        let text = j.to_text();
        let body_end = text.trim_end_matches('\n').rfind('\n').unwrap() + 1;
        let legacy_body = text[..body_end]
            .lines()
            .map(|l| {
                if l == HEADER_V2 {
                    HEADER_V1.to_string()
                } else if l.starts_with("stats ") {
                    let mut l = l.to_string();
                    for _ in 0..strip {
                        l = l.rsplit_once(' ').unwrap().0.to_string();
                    }
                    l
                } else {
                    l.to_string()
                }
            })
            .collect::<Vec<_>>()
            .join("\n")
            + "\n";
        format!("{legacy_body}crc {:08x}\n", crc32(legacy_body.as_bytes()))
    }

    #[test]
    fn legacy_eight_field_stats_line_still_loads() {
        // Journals written before the leaf-duplicates and prefix-cache-hit
        // fields had an 8-field stats line; they must keep loading (the
        // appended fields default to 0 / dcgen).
        let j = sample();
        let parsed = DcGenJournal::from_text(&legacy_text(&j, 6)).unwrap();
        assert_eq!(parsed.leaf_duplicates, 0);
        assert_eq!(parsed.prefix_cache_hits, 0);
        assert_eq!(parsed.scheduler, SchedulerKind::Dcgen);
        assert_eq!(parsed.sched_config_hash, 0);
        assert_eq!(parsed.frontier_cap, 0);
        assert_eq!(parsed.kernel, KernelChoice::Pinned);
        assert_eq!(parsed.emitted, j.emitted);
        assert_eq!(parsed.tasks, j.tasks);
    }

    #[test]
    fn legacy_nine_field_stats_line_still_loads() {
        // Journals from builds with leaf duplicates but no prefix-cache
        // statistic had a 9-field stats line.
        let j = sample();
        let parsed = DcGenJournal::from_text(&legacy_text(&j, 5)).unwrap();
        assert_eq!(parsed.leaf_duplicates, j.leaf_duplicates);
        assert_eq!(parsed.prefix_cache_hits, 0);
        assert_eq!(parsed.scheduler, SchedulerKind::Dcgen);
        assert_eq!(parsed.tasks, j.tasks);
    }

    #[test]
    fn legacy_ten_field_stats_line_defaults_to_dcgen_scheduler() {
        // Journals from just before the scheduler refactor had a 10-field
        // stats line; the scheduler identity triple defaults.
        let j = sample();
        let parsed = DcGenJournal::from_text(&legacy_text(&j, 4)).unwrap();
        assert_eq!(parsed.leaf_duplicates, j.leaf_duplicates);
        assert_eq!(parsed.prefix_cache_hits, j.prefix_cache_hits);
        assert_eq!(parsed.scheduler, SchedulerKind::Dcgen);
        assert_eq!(parsed.sched_config_hash, 0);
        assert_eq!(parsed.frontier_cap, 0);
        assert_eq!(parsed.tasks, j.tasks);
    }

    #[test]
    fn legacy_thirteen_field_stats_line_defaults_to_pinned_kernel() {
        // v1 journals (pre decode-kernel field) have a 13-field stats
        // line; the kernel defaults to pinned, the only kernel then.
        let j = sample();
        let parsed = DcGenJournal::from_text(&legacy_text(&j, 1)).unwrap();
        assert_eq!(parsed.kernel, KernelChoice::Pinned);
        assert_eq!(parsed.scheduler, j.scheduler);
        assert_eq!(parsed.sched_config_hash, j.sched_config_hash);
        assert_eq!(parsed.tasks, j.tasks);
    }

    #[test]
    fn kernel_identity_roundtrips() {
        let mut j = sample();
        j.kernel = KernelChoice::Quantized;
        let parsed = DcGenJournal::from_text(&j.to_text()).unwrap();
        assert_eq!(parsed.kernel, KernelChoice::Quantized);
    }

    #[test]
    fn check_kernel_refuses_mismatch_with_clear_diagnostic() {
        let mut j = sample();
        j.kernel = KernelChoice::Quantized;
        assert!(j.check_kernel(KernelChoice::Quantized).is_ok());
        let err = j.check_kernel(KernelChoice::Pinned).unwrap_err();
        let msg = err.to_string();
        assert!(
            msg.contains("`quantized`"),
            "names the journal kernel: {msg}"
        );
        assert!(
            msg.contains("`pinned`"),
            "names the requested kernel: {msg}"
        );
        assert!(
            msg.contains("--kernel quantized"),
            "suggests the fix: {msg}"
        );
    }

    #[test]
    fn garbage_kernel_name_is_rejected() {
        let j = sample();
        let tampered_body = j
            .to_text()
            .lines()
            .map(|l| {
                if l.starts_with("stats ") {
                    format!("{} int4", l.rsplit_once(' ').unwrap().0)
                } else {
                    l.to_string()
                }
            })
            .collect::<Vec<_>>()
            .join("\n");
        // Drop the stale crc line and re-sign the tampered body.
        let body = tampered_body
            .rsplit_once('\n')
            .map(|(b, _)| format!("{b}\n"))
            .unwrap();
        let text = format!("{body}crc {:08x}\n", crc32(body.as_bytes()));
        assert!(matches!(
            DcGenJournal::from_text(&text),
            Err(CoreError::Journal(msg)) if msg.contains("kernel")
        ));
    }

    #[test]
    fn scheduler_identity_roundtrips() {
        let mut j = sample();
        j.scheduler = SchedulerKind::Sopg;
        j.frontier_cap = 4096;
        j.sched_config_hash = 0xdead_beef;
        let parsed = DcGenJournal::from_text(&j.to_text()).unwrap();
        assert_eq!(parsed.scheduler, SchedulerKind::Sopg);
        assert_eq!(parsed.frontier_cap, 4096);
        assert_eq!(parsed.sched_config_hash, 0xdead_beef);
    }

    #[test]
    fn check_scheduler_refuses_mismatch_with_clear_diagnostic() {
        let mut j = sample();
        j.scheduler = SchedulerKind::Sopg;
        assert!(j.check_scheduler(SchedulerKind::Sopg).is_ok());
        let err = j.check_scheduler(SchedulerKind::Dcgen).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("`sopg`"), "names the journal scheduler: {msg}");
        assert!(
            msg.contains("`dcgen`"),
            "names the requested scheduler: {msg}"
        );
        assert!(msg.contains("--scheduler sopg"), "suggests the fix: {msg}");
    }

    #[test]
    fn garbage_scheduler_name_is_rejected() {
        let j = sample();
        let tampered_body = j
            .to_text()
            .lines()
            .map(|l| {
                if l.starts_with("stats ") {
                    l.replace(" dcgen ", " bogus ")
                } else {
                    l.to_string()
                }
            })
            .collect::<Vec<_>>()
            .join("\n");
        // Drop the stale crc line and re-sign the tampered body.
        let body = tampered_body
            .rsplit_once('\n')
            .map(|(b, _)| format!("{b}\n"))
            .unwrap();
        let text = format!("{body}crc {:08x}\n", crc32(body.as_bytes()));
        assert!(matches!(
            DcGenJournal::from_text(&text),
            Err(CoreError::Journal(msg)) if msg.contains("scheduler")
        ));
    }

    #[test]
    fn empty_prefix_and_empty_lists_roundtrip() {
        let mut j = sample();
        j.tasks.clear();
        j.failed.clear();
        let parsed = DcGenJournal::from_text(&j.to_text()).unwrap();
        assert_eq!(parsed, j);
    }
}
