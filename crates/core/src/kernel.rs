//! The `--kernel` decode-mode choice shared by `dcgen`, `strength`, and
//! `serve`.
//!
//! [`KernelChoice`] is the user-facing name for what [`pagpass_nn`] calls a
//! [`KernelMode`]: `pinned` is the bit-exact blocked f32 decode the golden
//! files pin, `quantized` is the pack-once int8 decode with its own goldens
//! and accuracy budget. The choice is recorded in D&C-GEN journals (so a
//! resume under a conflicting `--kernel` fails loudly instead of silently
//! mixing modes) and in `dcgen.summary`/`serve.summary` telemetry.

use std::fmt;
use std::str::FromStr;

use pagpass_nn::KernelMode;

use crate::error::CoreError;

/// Which decode kernel family a run uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KernelChoice {
    /// Bit-exact blocked f32 decode — the default, pinned by the f32
    /// golden files.
    #[default]
    Pinned,
    /// Pack-once int8 decode ([`pagpass_nn::QMat`]) — deterministic, with
    /// its own golden files and an accuracy budget enforced by
    /// `crates/eval`.
    Quantized,
}

impl KernelChoice {
    /// The [`KernelMode`] to install process-wide for this choice.
    #[must_use]
    pub fn mode(self) -> KernelMode {
        match self {
            KernelChoice::Pinned => KernelMode::Blocked,
            KernelChoice::Quantized => KernelMode::Quantized,
        }
    }

    /// The choice implied by the currently installed [`KernelMode`].
    /// `Naive` maps to `Pinned`: it is bit-identical to `Blocked`, so the
    /// f32 goldens (and journals) treat them as one mode.
    #[must_use]
    pub fn current() -> KernelChoice {
        match pagpass_nn::kernel_mode() {
            KernelMode::Quantized => KernelChoice::Quantized,
            KernelMode::Naive | KernelMode::Blocked => KernelChoice::Pinned,
        }
    }
}

impl fmt::Display for KernelChoice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            KernelChoice::Pinned => "pinned",
            KernelChoice::Quantized => "quantized",
        })
    }
}

impl FromStr for KernelChoice {
    type Err = CoreError;

    fn from_str(s: &str) -> Result<KernelChoice, CoreError> {
        match s {
            "pinned" => Ok(KernelChoice::Pinned),
            "quantized" => Ok(KernelChoice::Quantized),
            other => Err(CoreError::Config(format!(
                "unknown kernel `{other}` (expected `pinned` or `quantized`)"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_display_round_trip() {
        for k in [KernelChoice::Pinned, KernelChoice::Quantized] {
            assert_eq!(k.to_string().parse::<KernelChoice>().unwrap(), k);
        }
    }

    #[test]
    fn unknown_kernel_is_rejected_with_both_options_named() {
        let err = "int4".parse::<KernelChoice>().unwrap_err().to_string();
        assert!(err.contains("int4") && err.contains("pinned") && err.contains("quantized"));
    }

    #[test]
    fn modes_map_to_nn_kernel_modes() {
        assert_eq!(KernelChoice::Pinned.mode(), KernelMode::Blocked);
        assert_eq!(KernelChoice::Quantized.mode(), KernelMode::Quantized);
    }
}
