//! The Weir et al. (S&P 2009) probabilistic context-free grammar password
//! guesser — the classic probability-based model the paper builds its
//! pattern notion on (§II-C) and an important non-neural baseline.
//!
//! Training splits every password into PCFG segments and records two
//! distributions: pattern probabilities `Pr(L3N3S1)` and per-segment
//! terminal probabilities `Pr("abc" | L3)`. The probability of a password
//! factorizes as in the paper's Eq. 2:
//!
//! ```text
//! Pr(abc123!) = Pr(L3N3S1) · Pr(abc|L3) · Pr(123|N3) · Pr(!|S1)
//! ```
//!
//! Generation enumerates guesses in **descending probability order** with
//! the classic pivot-based priority queue, so the first `n` guesses are the
//! `n` most probable passwords under the grammar.
//!
//! # Examples
//!
//! ```
//! use pagpass_pcfg::PcfgModel;
//!
//! let corpus: Vec<String> = vec!["abc123".into(), "abc456".into(), "xyz123".into()];
//! let model = PcfgModel::train(corpus.iter().map(String::as_str));
//! let guesses = model.guesses(4);
//! assert_eq!(guesses[0], "abc123"); // the most probable composition
//! assert!(model.probability("abc123") > model.probability("xyz456"));
//! assert_eq!(model.probability("never-seen!"), 0.0);
//! ```

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap};

use pagpass_patterns::{Pattern, PatternDistribution, Segment};
use serde::{Deserialize, Serialize};

/// A trained PCFG password model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PcfgModel {
    /// Patterns with probabilities, descending.
    patterns: Vec<(Pattern, f64)>,
    /// Per-segment terminals with probabilities, descending.
    terminals: HashMap<Segment, Vec<(String, f64)>>,
}

impl PcfgModel {
    /// Trains on a cleaned corpus; passwords whose pattern cannot be
    /// extracted are skipped.
    pub fn train<'a, I>(passwords: I) -> PcfgModel
    where
        I: IntoIterator<Item = &'a str>,
    {
        let mut dist = PatternDistribution::new();
        let mut seg_counts: HashMap<Segment, HashMap<String, u64>> = HashMap::new();
        for pw in passwords {
            let Ok(pattern) = Pattern::of_password(pw) else {
                continue;
            };
            let mut offset = 0;
            for &seg in pattern.segments() {
                let len = usize::from(seg.len().get());
                let piece = &pw[offset..offset + len];
                *seg_counts
                    .entry(seg)
                    .or_default()
                    .entry(piece.to_owned())
                    .or_insert(0) += 1;
                offset += len;
            }
            dist.observe(pattern);
        }
        let patterns = dist
            .ranked()
            .into_iter()
            .map(|e| (e.pattern, e.probability))
            .collect();
        let terminals = seg_counts
            .into_iter()
            .map(|(seg, counts)| {
                let total: u64 = counts.values().sum();
                let mut list: Vec<(String, f64)> = counts
                    .into_iter()
                    .map(|(s, c)| (s, c as f64 / total as f64))
                    .collect();
                list.sort_by(|a, b| {
                    b.1.partial_cmp(&a.1)
                        .unwrap_or(Ordering::Equal)
                        .then_with(|| a.0.cmp(&b.0))
                });
                (seg, list)
            })
            .collect();
        PcfgModel {
            patterns,
            terminals,
        }
    }

    /// Number of distinct patterns in the grammar.
    #[must_use]
    pub fn pattern_count(&self) -> usize {
        self.patterns.len()
    }

    /// Number of distinct terminals for a segment (0 if unseen).
    #[must_use]
    pub fn terminal_count(&self, seg: Segment) -> usize {
        self.terminals.get(&seg).map_or(0, Vec::len)
    }

    /// Probability of a password under the grammar (Eq. 2); zero for
    /// passwords using unseen patterns or terminals.
    #[must_use]
    pub fn probability(&self, password: &str) -> f64 {
        let Ok(pattern) = Pattern::of_password(password) else {
            return 0.0;
        };
        let Some((_, p_pattern)) = self.patterns.iter().find(|(p, _)| *p == pattern) else {
            return 0.0;
        };
        let mut prob = *p_pattern;
        let mut offset = 0;
        for &seg in pattern.segments() {
            let len = usize::from(seg.len().get());
            let piece = &password[offset..offset + len];
            let Some(list) = self.terminals.get(&seg) else {
                return 0.0;
            };
            let Some((_, p)) = list.iter().find(|(s, _)| s == piece) else {
                return 0.0;
            };
            prob *= p;
            offset += len;
        }
        prob
    }

    /// The `n` most probable passwords, in descending probability order
    /// (ties broken deterministically).
    ///
    /// This is Weir's "next" algorithm: a max-heap of partial assignments,
    /// where popping an assignment pushes its successors obtained by
    /// advancing one terminal index at or after the pivot position — each
    /// concrete password is reached exactly once.
    #[must_use]
    pub fn guesses(&self, n: usize) -> Vec<String> {
        let mut heap: BinaryHeap<Candidate> = BinaryHeap::new();
        for (pi, (pattern, p_pattern)) in self.patterns.iter().enumerate() {
            if let Some(prob) =
                self.assignment_prob(pattern, *p_pattern, &vec![0; pattern.segment_count()])
            {
                heap.push(Candidate {
                    prob: OrderedProb(prob),
                    pattern_idx: pi,
                    indices: vec![0; pattern.segment_count()],
                    pivot: 0,
                });
            }
        }
        let mut out = Vec::with_capacity(n);
        while out.len() < n {
            let Some(cand) = heap.pop() else { break };
            let (pattern, p_pattern) = &self.patterns[cand.pattern_idx];
            out.push(self.realize(pattern, &cand.indices));
            for pos in cand.pivot..cand.indices.len() {
                let mut indices = cand.indices.clone();
                indices[pos] += 1;
                if let Some(prob) = self.assignment_prob(pattern, *p_pattern, &indices) {
                    heap.push(Candidate {
                        prob: OrderedProb(prob),
                        pattern_idx: cand.pattern_idx,
                        indices,
                        pivot: pos,
                    });
                }
            }
        }
        out
    }

    /// Probability of a (pattern, terminal indices) assignment, or `None`
    /// when an index is out of range or a segment has no terminals.
    fn assignment_prob(&self, pattern: &Pattern, p_pattern: f64, indices: &[usize]) -> Option<f64> {
        let mut prob = p_pattern;
        for (seg, &idx) in pattern.segments().iter().zip(indices) {
            let list = self.terminals.get(seg)?;
            prob *= list.get(idx)?.1;
        }
        Some(prob)
    }

    /// Concatenates the selected terminals into a password.
    fn realize(&self, pattern: &Pattern, indices: &[usize]) -> String {
        pattern
            .segments()
            .iter()
            .zip(indices)
            .map(|(seg, &idx)| self.terminals[seg][idx].0.as_str())
            .collect()
    }
}

/// `f64` wrapper ordering NaN-free probabilities for the heap.
#[derive(Debug, Clone, Copy, PartialEq)]
struct OrderedProb(f64);

impl Eq for OrderedProb {}

impl PartialOrd for OrderedProb {
    fn partial_cmp(&self, other: &OrderedProb) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrderedProb {
    fn cmp(&self, other: &OrderedProb) -> Ordering {
        self.0.partial_cmp(&other.0).unwrap_or(Ordering::Equal)
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct Candidate {
    prob: OrderedProb,
    pattern_idx: usize,
    indices: Vec<usize>,
    pivot: usize,
}

impl PartialOrd for Candidate {
    fn partial_cmp(&self, other: &Candidate) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Candidate {
    fn cmp(&self, other: &Candidate) -> Ordering {
        self.prob
            .cmp(&other.prob)
            .then_with(|| other.pattern_idx.cmp(&self.pattern_idx))
            .then_with(|| other.indices.cmp(&self.indices))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> PcfgModel {
        PcfgModel::train(
            ["abc123", "abc456", "xyz123", "abc123", "hello!", "12345"]
                .iter()
                .copied(),
        )
    }

    #[test]
    fn training_counts_patterns_and_terminals() {
        let m = model();
        assert_eq!(m.pattern_count(), 3); // L3N3, L5S1, N5
        let l3 = Segment::new(pagpass_patterns::CharClass::Letter, 3).unwrap();
        assert_eq!(m.terminal_count(l3), 2); // abc, xyz
        let n3 = Segment::new(pagpass_patterns::CharClass::Digit, 3).unwrap();
        assert_eq!(m.terminal_count(n3), 2); // 123, 456
    }

    #[test]
    fn probability_factorizes() {
        let m = model();
        // Pr(L3N3)=4/6, Pr(abc|L3)=3/4, Pr(123|N3)=3/4.
        let expect = (4.0 / 6.0) * (3.0 / 4.0) * (3.0 / 4.0);
        assert!((m.probability("abc123") - expect).abs() < 1e-12);
        assert_eq!(m.probability("abc789"), 0.0); // unseen terminal
        assert_eq!(m.probability("!!!"), 0.0); // unseen pattern
        assert_eq!(m.probability(""), 0.0);
    }

    #[test]
    fn guesses_are_descending_in_probability() {
        let m = model();
        let guesses = m.guesses(10);
        let probs: Vec<f64> = guesses.iter().map(|g| m.probability(g)).collect();
        assert!(
            probs.windows(2).all(|w| w[0] >= w[1] - 1e-12),
            "{guesses:?} {probs:?}"
        );
        assert_eq!(guesses[0], "abc123");
    }

    #[test]
    fn guesses_are_unique_and_exhaustive() {
        let m = model();
        // Grammar admits 2*2 (L3N3) + 1 (L5S1) + 1 (N5) = 6 passwords.
        let guesses = m.guesses(100);
        assert_eq!(guesses.len(), 6);
        let unique: std::collections::HashSet<&String> = guesses.iter().collect();
        assert_eq!(unique.len(), 6);
        assert!(
            guesses.contains(&"xyz456".to_owned()),
            "cross-composition is generated"
        );
    }

    #[test]
    fn trained_on_empty_corpus() {
        let m = PcfgModel::train(std::iter::empty());
        assert_eq!(m.pattern_count(), 0);
        assert!(m.guesses(5).is_empty());
        assert_eq!(m.probability("abc1"), 0.0);
    }

    #[test]
    fn hits_its_own_training_distribution() {
        // PCFG should crack passwords recombining seen parts.
        let train: Vec<String> = (0..50)
            .map(|i| {
                format!(
                    "{}{}",
                    ["love", "blue", "cake", "fire", "moon"][i % 5],
                    10 + i % 10
                )
            })
            .collect();
        let m = PcfgModel::train(train.iter().map(String::as_str));
        let guesses = m.guesses(60);
        // All 50 combos (5 words x 10 numbers) are reachable.
        assert!(guesses.len() >= 50);
        for w in ["love99", "moon13"] {
            // Probability may be zero only if the exact parts were unseen.
            let _ = m.probability(w);
        }
    }
}
